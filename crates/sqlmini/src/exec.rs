//! Plan execution: expression evaluation and the physical operators.

use crate::ast::BinOp;
use crate::functions::{self, FunctionMode};
use crate::plan::{AggExpr, AggOutput, BoundExpr, PlanNode, PlannedSelect};
use crate::provider::TableProvider;
use crate::{Result, SqlError};
use jackpine_geom::Envelope;
use jackpine_storage::Value;
use std::sync::Arc;

/// The materialized result of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a one-row, one-column result (e.g. `COUNT(*)`).
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => self.rows[0].first(),
            _ => None,
        }
    }
}

/// Executes a planned `SELECT`.
pub fn execute(plan: &PlannedSelect) -> Result<ResultSet> {
    let rows = run(&plan.root, plan.mode)?;
    Ok(ResultSet { columns: plan.columns.clone(), rows })
}

fn run(node: &PlanNode, mode: FunctionMode) -> Result<Vec<Vec<Value>>> {
    match node {
        PlanNode::SingleRow => Ok(vec![Vec::new()]),
        PlanNode::Scan { table } => scan_all(table),
        PlanNode::SpatialIndexScan { table, col, query, expand } => {
            let env = probe_envelope(query, expand, mode)?;
            match table.spatial_candidates(*col, &env) {
                Some(ids) => {
                    let mut out = Vec::with_capacity(ids.len());
                    for id in ids {
                        out.push(table.fetch(id)?.as_ref().clone());
                    }
                    Ok(out)
                }
                None => scan_all(table),
            }
        }
        PlanNode::OrderedIndexScan { table, col, key } => {
            let key = eval(key, &[], mode)?;
            match table.ordered_candidates(*col, &key) {
                Some(ids) => {
                    let mut out = Vec::with_capacity(ids.len());
                    for id in ids {
                        out.push(table.fetch(id)?.as_ref().clone());
                    }
                    Ok(out)
                }
                None => scan_all(table),
            }
        }
        PlanNode::KnnScan { table, col, query, k } => {
            let g = eval(query, &[], mode)?;
            let geom = g
                .as_geom()
                .ok_or_else(|| SqlError::Type("k-NN query expression must be a geometry".into()))?;
            let center = geom
                .envelope()
                .center()
                .ok_or_else(|| SqlError::Type("k-NN query geometry is empty".into()))?;
            match table.nearest(*col, center, *k) {
                Some(ids) => {
                    let mut out = Vec::with_capacity(ids.len());
                    for id in ids {
                        out.push(table.fetch(id)?.as_ref().clone());
                    }
                    Ok(out)
                }
                None => scan_all(table),
            }
        }
        PlanNode::Filter { input, predicate } => {
            let rows = run(input, mode)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if truthy(&eval(predicate, &row, mode)?) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::NestedLoopJoin { left, right } => {
            let l = run(left, mode)?;
            let r = run(right, mode)?;
            let mut out = Vec::with_capacity(l.len() * r.len().max(1));
            for lr in &l {
                for rr in &r {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::SpatialIndexJoin { left, right, right_col, probe, expand } => {
            let l = run(left, mode)?;
            let expand_by = match expand {
                Some(e) => eval(e, &[], mode)?
                    .as_f64()
                    .ok_or_else(|| SqlError::Type("DWithin distance must be numeric".into()))?,
                None => 0.0,
            };
            let mut out = Vec::new();
            for lr in &l {
                let g = eval(probe, lr, mode)?;
                let Some(geom) = g.as_geom() else {
                    continue; // NULL geometry joins nothing
                };
                let env = geom.envelope().expanded_by(expand_by);
                let ids = match right.spatial_candidates(*right_col, &env) {
                    Some(ids) => ids,
                    // No index after all: degenerate to scanning the right
                    // table for this probe.
                    None => right.row_ids(),
                };
                for id in ids {
                    let rr = right.fetch(id)?;
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanNode::Project { input, exprs } => {
            let rows = run(input, mode)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(eval(e, &row, mode)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PlanNode::Aggregate { input, group_by, outputs } => {
            let rows = run(input, mode)?;
            if group_by.is_empty() {
                let mut out_row = Vec::with_capacity(outputs.len());
                for (o, _) in outputs {
                    match o {
                        AggOutput::Agg(agg) => out_row.push(eval_aggregate(agg, &rows, mode)?),
                        AggOutput::Group(_) => {
                            return Err(SqlError::Type(
                                "group column without GROUP BY".into(),
                            ))
                        }
                    }
                }
                return Ok(vec![out_row]);
            }
            // Sort rows by their grouping keys, then fold each run.
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(eval(g, &row, mode)?);
                }
                keyed.push((key, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (a, b) in ka.iter().zip(kb) {
                    let ord = compare_values(a, b);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut out = Vec::new();
            let mut i = 0;
            while i < keyed.len() {
                let mut j = i + 1;
                while j < keyed.len()
                    && keyed[i]
                        .0
                        .iter()
                        .zip(&keyed[j].0)
                        .all(|(a, b)| compare_values(a, b) == std::cmp::Ordering::Equal)
                {
                    j += 1;
                }
                let group_rows: Vec<Vec<Value>> =
                    keyed[i..j].iter().map(|(_, r)| r.clone()).collect();
                let mut out_row = Vec::with_capacity(outputs.len());
                for (o, _) in outputs {
                    match o {
                        AggOutput::Group(g) => out_row.push(keyed[i].0[*g].clone()),
                        AggOutput::Agg(agg) => {
                            out_row.push(eval_aggregate(agg, &group_rows, mode)?)
                        }
                    }
                }
                out.push(out_row);
                i = j;
            }
            Ok(out)
        }
        PlanNode::Sort { input, keys } => {
            let rows = run(input, mode)?;
            // Precompute key tuples, then sort by them.
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut kt = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    kt.push(eval(e, &row, mode)?);
                }
                keyed.push((kt, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let ord = compare_values(&ka[i], &kb[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        PlanNode::Limit { input, n } => {
            let mut rows = run(input, mode)?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

fn scan_all(table: &Arc<dyn TableProvider>) -> Result<Vec<Vec<Value>>> {
    let ids = table.row_ids();
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        out.push(table.fetch(id)?.as_ref().clone());
    }
    Ok(out)
}

fn probe_envelope(
    query: &BoundExpr,
    expand: &Option<BoundExpr>,
    mode: FunctionMode,
) -> Result<Envelope> {
    let v = eval(query, &[], mode)?;
    let g = v
        .as_geom()
        .ok_or_else(|| SqlError::Type("spatial index probe must be a geometry".into()))?;
    let mut env = g.envelope();
    if let Some(e) = expand {
        let d = eval(e, &[], mode)?
            .as_f64()
            .ok_or_else(|| SqlError::Type("DWithin distance must be numeric".into()))?;
        env = env.expanded_by(d);
    }
    Ok(env)
}

/// SQL truthiness: non-zero numbers are true; NULL and everything else is
/// false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        _ => false,
    }
}

/// Total ordering for sorting: NULLs first, then numeric, text, geometry
/// (by WKT) — enough for benchmark queries.
pub fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Text(x), Value::Text(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            _ => a.to_string().cmp(&b.to_string()),
        },
    }
}

/// Evaluates a bound expression over a tuple.
pub fn eval(e: &BoundExpr, row: &[Value], mode: FunctionMode) -> Result<Value> {
    Ok(match e {
        BoundExpr::Literal(v) => v.clone(),
        BoundExpr::Column(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Type(format!("column offset {i} out of range")))?,
        BoundExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row, mode)?);
            }
            functions::call(mode, name, &vals)?
        }
        BoundExpr::Binary { op, left, right } => {
            let l = eval(left, row, mode)?;
            // Short-circuit logic.
            match op {
                BinOp::And => {
                    if !truthy(&l) {
                        return Ok(Value::Int(0));
                    }
                    return Ok(Value::Int(i64::from(truthy(&eval(right, row, mode)?))));
                }
                BinOp::Or => {
                    if truthy(&l) {
                        return Ok(Value::Int(1));
                    }
                    return Ok(Value::Int(i64::from(truthy(&eval(right, row, mode)?))));
                }
                _ => {}
            }
            let r = eval(right, row, mode)?;
            eval_binary(*op, &l, &r)?
        }
        BoundExpr::Not(inner) => Value::Int(i64::from(!truthy(&eval(inner, row, mode)?))),
        BoundExpr::Neg(inner) => match eval(inner, row, mode)? {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            Value::Null => Value::Null,
            other => return Err(SqlError::Type(format!("cannot negate {other:?}"))),
        },
        BoundExpr::Between { expr, lo, hi } => {
            let v = eval(expr, row, mode)?;
            let lo = eval(lo, row, mode)?;
            let hi = eval(hi, row, mode)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                Value::Int(0)
            } else {
                let ge = compare_values(&v, &lo) != std::cmp::Ordering::Less;
                let le = compare_values(&v, &hi) != std::cmp::Ordering::Greater;
                Value::Int(i64::from(ge && le))
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, mode)?;
            Value::Int(i64::from(v.is_null() != *negated))
        }
    })
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    // NULL propagates through comparisons (as false) and arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => Value::Null,
            _ => Value::Int(0),
        });
    }
    Ok(match op {
        BinOp::Eq => Value::Int(i64::from(value_eq(l, r))),
        BinOp::Neq => Value::Int(i64::from(!value_eq(l, r))),
        BinOp::Lt => Value::Int(i64::from(compare_values(l, r) == Ordering::Less)),
        BinOp::Le => Value::Int(i64::from(compare_values(l, r) != Ordering::Greater)),
        BinOp::Gt => Value::Int(i64::from(compare_values(l, r) == Ordering::Greater)),
        BinOp::Ge => Value::Int(i64::from(compare_values(l, r) != Ordering::Less)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(op, l, r)?,
        BinOp::And | BinOp::Or => unreachable!("short-circuited by caller"),
    })
}

fn value_eq(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Text(a), Value::Text(b)) => a == b,
        (Value::Geom(a), Value::Geom(b)) => a == b,
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral except division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::Type(format!(
                "arithmetic on non-numeric values {l:?} and {r:?}"
            )))
        }
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        _ => unreachable!(),
    })
}

fn eval_aggregate(agg: &AggExpr, rows: &[Vec<Value>], mode: FunctionMode) -> Result<Value> {
    match agg {
        AggExpr::CountStar => Ok(Value::Int(rows.len() as i64)),
        AggExpr::Count(e) => {
            let mut n = 0i64;
            for row in rows {
                if !eval(e, row, mode)?.is_null() {
                    n += 1;
                }
            }
            Ok(Value::Int(n))
        }
        AggExpr::Sum(e) | AggExpr::Avg(e) => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for row in rows {
                let v = eval(e, row, mode)?;
                if let Some(f) = v.as_f64() {
                    sum += f;
                    n += 1;
                }
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(match agg {
                AggExpr::Sum(_) => Value::Float(sum),
                _ => Value::Float(sum / n as f64),
            })
        }
        AggExpr::Min(e) | AggExpr::Max(e) => {
            let mut best: Option<Value> = None;
            for row in rows {
                let v = eval(e, row, mode)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match agg {
                            AggExpr::Min(_) => {
                                compare_values(&v, &b) == std::cmp::Ordering::Less
                            }
                            _ => compare_values(&v, &b) == std::cmp::Ordering::Greater,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(truthy(&Value::Int(1)));
        assert!(truthy(&Value::Float(0.5)));
        assert!(!truthy(&Value::Int(0)));
        assert!(!truthy(&Value::Null));
        assert!(!truthy(&Value::Text("yes".into())));
    }

    #[test]
    fn value_comparisons() {
        use std::cmp::Ordering;
        assert_eq!(compare_values(&Value::Int(1), &Value::Int(2)), Ordering::Less);
        assert_eq!(compare_values(&Value::Int(2), &Value::Float(1.5)), Ordering::Greater);
        assert_eq!(compare_values(&Value::Null, &Value::Int(0)), Ordering::Less);
        assert_eq!(
            compare_values(&Value::Text("a".into()), &Value::Text("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(
            eval_binary(BinOp::Add, &Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_binary(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binary(BinOp::Mul, &Value::Float(2.0), &Value::Int(3)).unwrap(),
            Value::Float(6.0)
        );
        assert_eq!(
            eval_binary(BinOp::Add, &Value::Null, &Value::Int(3)).unwrap(),
            Value::Null
        );
        assert!(eval_binary(BinOp::Add, &Value::Text("a".into()), &Value::Int(1)).is_err());
    }

    #[test]
    fn is_null_logic() {
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(1));
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Int(5))),
            negated: true,
        };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(1));
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Int(5))),
            negated: false,
        };
        assert_eq!(eval(&e, &[], FunctionMode::Exact).unwrap(), Value::Int(0));
    }
}
