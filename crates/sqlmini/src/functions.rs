//! The spatial (and scalar) function registry.
//!
//! Two evaluation modes mirror the engines Jackpine compared:
//!
//! * [`FunctionMode::Exact`] — full exact geometry semantics and the full
//!   function set (the PostGIS-like profiles).
//! * [`FunctionMode::MbrOnly`] — topological predicates evaluated on
//!   minimum bounding rectangles only, and the constructive functions
//!   (buffer, overlay, hull, simplify) *unavailable* — the behaviour of
//!   MySQL's spatial support at the time of the paper, and the source of
//!   its feature-matrix gaps.

use crate::{Result, SqlError};
use jackpine_geom::algorithms as alg;
use jackpine_geom::{wkt, Envelope, Geometry, GeometryCollection, LineString, Point, Polygon};
use jackpine_storage::Value;
use jackpine_topo as topo;

/// Spatial evaluation mode of an engine profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FunctionMode {
    /// Exact geometry semantics, full function set.
    Exact,
    /// MBR-approximate predicates, reduced function set.
    MbrOnly,
}

/// Functions absent from the MBR-only profile (the MySQL-era gaps that
/// Jackpine's feature matrix reports).
const MBR_ONLY_MISSING: [&str; 16] = [
    "ST_BUFFER",
    "ST_CONVEXHULL",
    "ST_UNION",
    "ST_INTERSECTION",
    "ST_DIFFERENCE",
    "ST_SIMPLIFY",
    "ST_RELATE",
    "ST_COVERS",
    "ST_COVEREDBY",
    "ST_DWITHIN",
    // No geodetic support in the MySQL-era profile — one of the axes the
    // paper's feature comparison calls out.
    "ST_DISTANCESPHERE",
    "ST_LENGTHSPHERE",
    "ST_AREASPHERE",
    // Affine geometry editing is likewise absent from the paper-era
    // MySQL function set.
    "ST_TRANSLATE",
    "ST_SCALE",
    "ST_ROTATE",
];

/// The topological predicates (shared by planners and the feature matrix).
pub const TOPO_PREDICATES: [&str; 10] = [
    "ST_EQUALS",
    "ST_DISJOINT",
    "ST_INTERSECTS",
    "ST_TOUCHES",
    "ST_CROSSES",
    "ST_WITHIN",
    "ST_CONTAINS",
    "ST_OVERLAPS",
    "ST_COVERS",
    "ST_COVEREDBY",
];

impl FunctionMode {
    /// Whether a function name is available in this mode.
    pub fn supports(self, name: &str) -> bool {
        let upper = name.to_ascii_uppercase();
        match self {
            FunctionMode::Exact => true,
            FunctionMode::MbrOnly => !MBR_ONLY_MISSING.contains(&upper.as_str()),
        }
    }
}

/// `true` when `name` is a topological predicate the planner can serve
/// with a spatial-index filter step (everything except `ST_Disjoint`,
/// whose candidates an intersection-style index cannot narrow).
pub fn is_indexable_predicate(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    (TOPO_PREDICATES.contains(&upper.as_str()) && upper != "ST_DISJOINT")
        || upper == "ST_DWITHIN"
        || upper.starts_with("MBR") && upper != "MBRDISJOINT"
}

/// Evaluates a (non-aggregate) function call on already-computed argument
/// values.
pub fn call(mode: FunctionMode, name: &str, args: &[Value]) -> Result<Value> {
    let upper = name.to_ascii_uppercase();
    if !mode.supports(&upper) {
        return Err(SqlError::UnsupportedFeature(name.to_string()));
    }
    match upper.as_str() {
        // ----- constructors ------------------------------------------------
        "ST_GEOMFROMTEXT" => {
            let s = text_arg(&upper, args, 0)?;
            Ok(Value::Geom(wkt::parse(s)?))
        }
        "ST_ASTEXT" => Ok(Value::Text(wkt::write(geom_arg(&upper, args, 0)?))),
        "ST_POINT" | "ST_MAKEPOINT" => {
            let x = num_arg(&upper, args, 0)?;
            let y = num_arg(&upper, args, 1)?;
            Ok(Value::Geom(Geometry::Point(Point::new(x, y)?)))
        }
        "ST_MAKEENVELOPE" => {
            let e = Envelope::new(
                num_arg(&upper, args, 0)?,
                num_arg(&upper, args, 1)?,
                num_arg(&upper, args, 2)?,
                num_arg(&upper, args, 3)?,
            );
            Ok(Value::Geom(envelope_geometry(&e)))
        }

        // ----- accessors / measures ---------------------------------------
        "ST_X" => point_component(&upper, args, |c| c.x),
        "ST_Y" => point_component(&upper, args, |c| c.y),
        "ST_AREA" => Ok(Value::Float(alg::area(geom_arg(&upper, args, 0)?))),
        "ST_LENGTH" | "ST_PERIMETER" => Ok(Value::Float(alg::length(geom_arg(&upper, args, 0)?))),
        "ST_DIMENSION" => Ok(Value::Int(geom_arg(&upper, args, 0)?.dimension().as_i32() as i64)),
        "ST_NUMPOINTS" | "ST_NPOINTS" => {
            Ok(Value::Int(geom_arg(&upper, args, 0)?.num_coords() as i64))
        }
        "ST_GEOMETRYTYPE" => Ok(Value::Text(format!(
            "ST_{}",
            geom_arg(&upper, args, 0)?.geometry_type().wkt_keyword()
        ))),
        "ST_ENVELOPE" => Ok(Value::Geom(envelope_geometry(&geom_arg(&upper, args, 0)?.envelope()))),
        "ST_BOUNDARY" => Ok(Value::Geom(geom_arg(&upper, args, 0)?.boundary())),
        "ST_CENTROID" => {
            let g = geom_arg(&upper, args, 0)?;
            Ok(match alg::centroid(g) {
                Some(c) => Value::Geom(Geometry::Point(Point::from_coord(c)?)),
                None => Value::Geom(Geometry::GeometryCollection(GeometryCollection(vec![]))),
            })
        }

        // ----- constructive -------------------------------------------------
        "ST_BUFFER" => {
            let g = geom_arg(&upper, args, 0)?;
            let d = num_arg(&upper, args, 1)?;
            let quad = match args.get(2) {
                Some(v) => {
                    v.as_f64().ok_or_else(|| SqlError::Type("quad_segs must be numeric".into()))?
                        as usize
                }
                None => alg::buffer::DEFAULT_QUAD_SEGS,
            };
            Ok(Value::Geom(alg::buffer::buffer_with_segments(g, d, quad)?))
        }
        "ST_CONVEXHULL" => Ok(Value::Geom(alg::convex_hull(geom_arg(&upper, args, 0)?)?)),
        "ST_SIMPLIFY" => {
            Ok(Value::Geom(alg::simplify(geom_arg(&upper, args, 0)?, num_arg(&upper, args, 1)?)?))
        }
        "ST_UNION" => {
            Ok(Value::Geom(alg::union(geom_arg(&upper, args, 0)?, geom_arg(&upper, args, 1)?)?))
        }
        "ST_INTERSECTION" => Ok(Value::Geom(alg::intersection(
            geom_arg(&upper, args, 0)?,
            geom_arg(&upper, args, 1)?,
        )?)),
        "ST_DIFFERENCE" => Ok(Value::Geom(alg::difference(
            geom_arg(&upper, args, 0)?,
            geom_arg(&upper, args, 1)?,
        )?)),

        // ----- accessors (structural) -----------------------------------------
        "ST_ISEMPTY" => Ok(bool_value(geom_arg(&upper, args, 0)?.is_empty())),
        "ST_ISCLOSED" => match geom_arg(&upper, args, 0)? {
            Geometry::LineString(l) => Ok(bool_value(l.is_closed())),
            Geometry::MultiLineString(m) => {
                Ok(bool_value(!m.0.is_empty() && m.0.iter().all(LineString::is_closed)))
            }
            _ => Err(SqlError::Type(format!("{upper}: argument must be a line"))),
        },
        "ST_STARTPOINT" | "ST_ENDPOINT" => match geom_arg(&upper, args, 0)? {
            Geometry::LineString(l) => {
                let c = if upper == "ST_STARTPOINT" { l.start() } else { l.end() };
                Ok(match c {
                    Some(c) => Value::Geom(Geometry::Point(Point::from_coord(c)?)),
                    None => Value::Null,
                })
            }
            _ => Err(SqlError::Type(format!("{upper}: argument must be a linestring"))),
        },
        "ST_NUMGEOMETRIES" => {
            let n = match geom_arg(&upper, args, 0)? {
                Geometry::MultiPoint(m) => m.0.len(),
                Geometry::MultiLineString(m) => m.0.len(),
                Geometry::MultiPolygon(m) => m.0.len(),
                Geometry::GeometryCollection(c) => c.0.len(),
                _ => 1,
            };
            Ok(Value::Int(n as i64))
        }
        "ST_GEOMETRYN" => {
            let n = num_arg(&upper, args, 1)? as usize;
            if n < 1 {
                return Err(SqlError::Type("ST_GeometryN index starts at 1".into()));
            }
            let g = geom_arg(&upper, args, 0)?;
            let member = match g {
                Geometry::MultiPoint(m) => m.0.get(n - 1).copied().map(Geometry::Point),
                Geometry::MultiLineString(m) => m.0.get(n - 1).cloned().map(Geometry::LineString),
                Geometry::MultiPolygon(m) => m.0.get(n - 1).cloned().map(Geometry::Polygon),
                Geometry::GeometryCollection(c) => c.0.get(n - 1).cloned(),
                single if n == 1 => Some(single.clone()),
                _ => None,
            };
            Ok(member.map(Value::Geom).unwrap_or(Value::Null))
        }
        "ST_POINTONSURFACE" => match geom_arg(&upper, args, 0)? {
            Geometry::Polygon(p) => {
                Ok(Value::Geom(Geometry::Point(Point::from_coord(topo::interior_point(p))?)))
            }
            Geometry::MultiPolygon(m) => match m.0.first() {
                Some(p) => {
                    Ok(Value::Geom(Geometry::Point(Point::from_coord(topo::interior_point(p))?)))
                }
                None => Ok(Value::Null),
            },
            Geometry::Point(p) => Ok(Value::Geom(Geometry::Point(*p))),
            other => Err(SqlError::Type(format!(
                "{upper}: unsupported argument type {:?}",
                other.geometry_type()
            ))),
        },

        // ----- binary serialization ---------------------------------------------
        "ST_ASBINARY" => {
            let bytes = jackpine_geom::wkb::encode(geom_arg(&upper, args, 0)?);
            Ok(Value::Text(hex_encode(&bytes)))
        }
        "ST_GEOMFROMWKB" => {
            let hex = text_arg(&upper, args, 0)?;
            let bytes =
                hex_decode(hex).ok_or_else(|| SqlError::Type("malformed hex WKB".into()))?;
            Ok(Value::Geom(jackpine_geom::wkb::decode(&bytes)?))
        }

        // ----- affine editing --------------------------------------------------
        "ST_TRANSLATE" => Ok(Value::Geom(alg::affine::translate(
            geom_arg(&upper, args, 0)?,
            num_arg(&upper, args, 1)?,
            num_arg(&upper, args, 2)?,
        )?)),
        "ST_SCALE" => Ok(Value::Geom(alg::affine::scale(
            geom_arg(&upper, args, 0)?,
            num_arg(&upper, args, 1)?,
            num_arg(&upper, args, 2)?,
        )?)),
        "ST_ROTATE" => {
            let g = geom_arg(&upper, args, 0)?;
            let angle = num_arg(&upper, args, 1)?;
            let origin = match (args.get(2), args.get(3)) {
                (Some(x), Some(y)) => jackpine_geom::Coord::new(
                    x.as_f64()
                        .ok_or_else(|| SqlError::Type("rotation origin must be numeric".into()))?,
                    y.as_f64()
                        .ok_or_else(|| SqlError::Type("rotation origin must be numeric".into()))?,
                ),
                _ => jackpine_geom::Coord::new(0.0, 0.0),
            };
            Ok(Value::Geom(alg::affine::rotate(g, angle, origin)?))
        }

        // ----- geodetic measures ---------------------------------------------
        "ST_DISTANCESPHERE" => {
            let d = alg::geodesic::distance_sphere(
                geom_arg(&upper, args, 0)?,
                geom_arg(&upper, args, 1)?,
            );
            Ok(if d.is_finite() { Value::Float(d) } else { Value::Null })
        }
        "ST_LENGTHSPHERE" => {
            Ok(Value::Float(alg::geodesic::length_sphere(geom_arg(&upper, args, 0)?)))
        }
        "ST_AREASPHERE" => Ok(Value::Float(alg::geodesic::area_sphere(geom_arg(&upper, args, 0)?))),

        // ----- metric predicates -------------------------------------------
        "ST_DISTANCE" => {
            let d = alg::distance(geom_arg(&upper, args, 0)?, geom_arg(&upper, args, 1)?);
            Ok(if d.is_finite() { Value::Float(d) } else { Value::Null })
        }
        "ST_DWITHIN" => {
            let d = alg::distance(geom_arg(&upper, args, 0)?, geom_arg(&upper, args, 1)?);
            Ok(bool_value(d <= num_arg(&upper, args, 2)?))
        }

        // ----- topological predicates ---------------------------------------
        "ST_EQUALS" | "ST_DISJOINT" | "ST_INTERSECTS" | "ST_TOUCHES" | "ST_CROSSES"
        | "ST_WITHIN" | "ST_CONTAINS" | "ST_OVERLAPS" | "ST_COVERS" | "ST_COVEREDBY" => {
            let a = geom_arg(&upper, args, 0)?;
            let b = geom_arg(&upper, args, 1)?;
            let v = match mode {
                FunctionMode::Exact => exact_predicate(&upper, a, b)?,
                FunctionMode::MbrOnly => mbr_predicate(&upper, &a.envelope(), &b.envelope()),
            };
            Ok(bool_value(v))
        }
        "ST_RELATE" => {
            let a = geom_arg(&upper, args, 0)?;
            let b = geom_arg(&upper, args, 1)?;
            let m = topo::relate(a, b)?;
            match args.get(2) {
                Some(p) => {
                    let pattern = p
                        .as_str()
                        .ok_or_else(|| SqlError::Type("relate pattern must be text".into()))?;
                    Ok(bool_value(m.matches(pattern)?))
                }
                None => Ok(Value::Text(m.to_string())),
            }
        }

        // ----- explicit MBR predicates (available in every mode) ------------
        "MBRINTERSECTS" | "MBRCONTAINS" | "MBRWITHIN" | "MBREQUALS" | "MBRDISJOINT"
        | "MBROVERLAPS" | "MBRTOUCHES" => {
            let a = geom_arg(&upper, args, 0)?.envelope();
            let b = geom_arg(&upper, args, 1)?.envelope();
            let name = upper.replace("MBR", "ST_");
            Ok(bool_value(mbr_predicate(&name, &a, &b)))
        }

        // ----- scalar helpers ------------------------------------------------
        "ABS" => Ok(Value::Float(num_arg(&upper, args, 0)?.abs())),
        "UPPER" => Ok(Value::Text(text_arg(&upper, args, 0)?.to_uppercase())),
        "LOWER" => Ok(Value::Text(text_arg(&upper, args, 0)?.to_lowercase())),
        "CHAR_LENGTH" => Ok(Value::Int(text_arg(&upper, args, 0)?.chars().count() as i64)),

        _ => Err(SqlError::Unresolved(format!("function {name}"))),
    }
}

/// Exact evaluation of a named predicate.
fn exact_predicate(upper: &str, a: &Geometry, b: &Geometry) -> Result<bool> {
    // Envelope pre-filter: every predicate except Disjoint implies
    // envelope intersection, so a cheap reject avoids the full relate.
    let envs_intersect = a.envelope().intersects(&b.envelope());
    Ok(match upper {
        "ST_EQUALS" => envs_intersect && topo::equals(a, b)?,
        "ST_DISJOINT" => !envs_intersect || topo::disjoint(a, b)?,
        "ST_INTERSECTS" => envs_intersect && topo::intersects(a, b)?,
        "ST_TOUCHES" => envs_intersect && topo::touches(a, b)?,
        "ST_CROSSES" => envs_intersect && topo::crosses(a, b)?,
        "ST_WITHIN" => envs_intersect && topo::within(a, b)?,
        "ST_CONTAINS" => envs_intersect && topo::contains(a, b)?,
        "ST_OVERLAPS" => envs_intersect && topo::overlaps(a, b)?,
        "ST_COVERS" => envs_intersect && topo::covers(a, b)?,
        "ST_COVEREDBY" => envs_intersect && topo::covered_by(a, b)?,
        other => return Err(SqlError::Unresolved(format!("predicate {other}"))),
    })
}

/// MBR-approximate evaluation of a named predicate (the MySQL-era
/// semantics: correct for rectangles, a superset/approximation for real
/// shapes).
fn mbr_predicate(upper: &str, a: &Envelope, b: &Envelope) -> bool {
    match upper {
        "ST_EQUALS" => a == b,
        "ST_DISJOINT" => !a.intersects(b),
        "ST_INTERSECTS" => a.intersects(b),
        "ST_WITHIN" => b.contains_envelope(a),
        "ST_CONTAINS" => a.contains_envelope(b),
        "ST_TOUCHES" => {
            // Rectangles touch when they meet only along their boundary.
            match a.intersection(b) {
                Some(i) => i.area() == 0.0,
                None => false,
            }
        }
        "ST_OVERLAPS" | "ST_CROSSES" => {
            // Interiors intersect, neither contains the other.
            match a.intersection(b) {
                Some(i) => i.area() > 0.0 && !a.contains_envelope(b) && !b.contains_envelope(a),
                None => false,
            }
        }
        _ => false,
    }
}

/// Builds the geometry of an envelope: point, line or polygon depending on
/// degeneracy.
fn envelope_geometry(e: &Envelope) -> Geometry {
    if e.is_empty() {
        return Geometry::GeometryCollection(GeometryCollection(vec![]));
    }
    if e.width() == 0.0 && e.height() == 0.0 {
        return Geometry::Point(Point::new(e.min_x, e.min_y).expect("finite envelope corner"));
    }
    if e.width() == 0.0 || e.height() == 0.0 {
        let l = LineString::new(vec![
            jackpine_geom::Coord::new(e.min_x, e.min_y),
            jackpine_geom::Coord::new(e.max_x, e.max_y),
        ])
        .expect("distinct corners of a degenerate envelope");
        return Geometry::LineString(l);
    }
    Geometry::Polygon(Polygon::from_envelope(e).expect("non-degenerate envelope"))
}

fn bool_value(b: bool) -> Value {
    Value::Int(i64::from(b))
}

fn geom_arg<'a>(fname: &str, args: &'a [Value], i: usize) -> Result<&'a Geometry> {
    args.get(i)
        .and_then(Value::as_geom)
        .ok_or_else(|| SqlError::Type(format!("{fname}: argument {i} must be a geometry")))
}

fn num_arg(fname: &str, args: &[Value], i: usize) -> Result<f64> {
    args.get(i)
        .and_then(Value::as_f64)
        .ok_or_else(|| SqlError::Type(format!("{fname}: argument {i} must be numeric")))
}

fn text_arg<'a>(fname: &str, args: &'a [Value], i: usize) -> Result<&'a str> {
    args.get(i)
        .and_then(Value::as_str)
        .ok_or_else(|| SqlError::Type(format!("{fname}: argument {i} must be text")))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02X}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2).map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()).collect()
}

fn point_component(
    fname: &str,
    args: &[Value],
    f: impl Fn(jackpine_geom::Coord) -> f64,
) -> Result<Value> {
    match geom_arg(fname, args, 0)? {
        Geometry::Point(p) => Ok(match p.coord() {
            Some(c) => Value::Float(f(c)),
            None => Value::Null,
        }),
        _ => Err(SqlError::Type(format!("{fname}: argument must be a point"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(w: &str) -> Value {
        Value::Geom(wkt::parse(w).unwrap())
    }

    #[test]
    fn constructors_and_accessors() {
        let g = call(FunctionMode::Exact, "ST_GeomFromText", &[Value::Text("POINT (1 2)".into())])
            .unwrap();
        assert_eq!(
            call(FunctionMode::Exact, "ST_X", std::slice::from_ref(&g)).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_Y", std::slice::from_ref(&g)).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_AsText", &[g]).unwrap(),
            Value::Text("POINT (1 2)".into())
        );
    }

    #[test]
    fn measures() {
        let sq = geom("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        assert_eq!(
            call(FunctionMode::Exact, "ST_Area", std::slice::from_ref(&sq)).unwrap(),
            Value::Float(4.0)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_Length", std::slice::from_ref(&sq)).unwrap(),
            Value::Float(8.0)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_Dimension", std::slice::from_ref(&sq)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(call(FunctionMode::Exact, "ST_NumPoints", &[sq]).unwrap(), Value::Int(5));
    }

    #[test]
    fn predicates_exact_vs_mbr() {
        // A diagonal line and a square that intersect in MBR but not in
        // reality: the canonical Jackpine false-positive case.
        let line = geom("LINESTRING (0 0, 10 10)");
        let poly = geom("POLYGON ((8 0, 9 0, 9 1, 8 1, 8 0))");
        let exact =
            call(FunctionMode::Exact, "ST_Intersects", &[line.clone(), poly.clone()]).unwrap();
        let mbr = call(FunctionMode::MbrOnly, "ST_Intersects", &[line, poly]).unwrap();
        assert_eq!(exact, Value::Int(0));
        assert_eq!(mbr, Value::Int(1)); // MBR false positive
    }

    #[test]
    fn mbr_mode_feature_gaps() {
        let sq = geom("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        let err = call(FunctionMode::MbrOnly, "ST_Buffer", &[sq.clone(), Value::Float(1.0)]);
        assert!(matches!(err, Err(SqlError::UnsupportedFeature(_))));
        assert!(FunctionMode::MbrOnly.supports("ST_Area"));
        assert!(!FunctionMode::MbrOnly.supports("ST_ConvexHull"));
        assert!(FunctionMode::Exact.supports("ST_ConvexHull"));
        // Measures still work in MBR mode.
        assert_eq!(call(FunctionMode::MbrOnly, "ST_Area", &[sq]).unwrap(), Value::Float(4.0));
    }

    #[test]
    fn relate_matrix_and_pattern() {
        let a = geom("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        let b = geom("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))");
        let m = call(FunctionMode::Exact, "ST_Relate", &[a.clone(), b.clone()]).unwrap();
        assert_eq!(m, Value::Text("212101212".into()));
        let hit = call(FunctionMode::Exact, "ST_Relate", &[a, b, Value::Text("T*T***T**".into())])
            .unwrap();
        assert_eq!(hit, Value::Int(1));
    }

    #[test]
    fn distance_and_dwithin() {
        let a = geom("POINT (0 0)");
        let b = geom("POINT (3 4)");
        assert_eq!(
            call(FunctionMode::Exact, "ST_Distance", &[a.clone(), b.clone()]).unwrap(),
            Value::Float(5.0)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_DWithin", &[a.clone(), b.clone(), Value::Float(5.0)])
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_DWithin", &[a, b, Value::Float(4.9)]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn envelope_degeneracies() {
        let p = geom("POINT (1 2)");
        assert!(matches!(
            call(FunctionMode::Exact, "ST_Envelope", &[p]).unwrap(),
            Value::Geom(Geometry::Point(_))
        ));
        let l = geom("LINESTRING (0 0, 0 5)");
        assert!(matches!(
            call(FunctionMode::Exact, "ST_Envelope", &[l]).unwrap(),
            Value::Geom(Geometry::LineString(_))
        ));
        let sq = geom("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        assert!(matches!(
            call(FunctionMode::Exact, "ST_Envelope", &[sq]).unwrap(),
            Value::Geom(Geometry::Polygon(_))
        ));
    }

    #[test]
    fn type_errors() {
        assert!(call(FunctionMode::Exact, "ST_Area", &[Value::Int(1)]).is_err());
        assert!(call(FunctionMode::Exact, "ST_X", &[geom("LINESTRING (0 0, 1 1)")]).is_err());
        assert!(call(FunctionMode::Exact, "NoSuchFn", &[]).is_err());
        assert!(call(FunctionMode::Exact, "ST_GeomFromText", &[Value::Int(2)]).is_err());
    }

    #[test]
    fn explicit_mbr_functions_work_in_exact_mode() {
        let line = geom("LINESTRING (0 0, 10 10)");
        let poly = geom("POLYGON ((8 0, 9 0, 9 1, 8 1, 8 0))");
        assert_eq!(
            call(FunctionMode::Exact, "MBRIntersects", &[line, poly]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn indexable_predicates() {
        assert!(is_indexable_predicate("ST_Intersects"));
        assert!(is_indexable_predicate("st_contains"));
        assert!(!is_indexable_predicate("ST_Disjoint"));
        assert!(is_indexable_predicate("ST_DWithin"));
        assert!(!is_indexable_predicate("ST_Area"));
    }
}

#[cfg(test)]
mod accessor_tests {
    use super::*;

    fn geom(w: &str) -> Value {
        Value::Geom(wkt::parse(w).unwrap())
    }

    #[test]
    fn structural_accessors() {
        let line = geom("LINESTRING (0 0, 1 0, 1 1)");
        assert_eq!(
            call(FunctionMode::Exact, "ST_IsClosed", std::slice::from_ref(&line)).unwrap(),
            Value::Int(0)
        );
        let ring = geom("LINESTRING (0 0, 1 0, 1 1, 0 0)");
        assert_eq!(call(FunctionMode::Exact, "ST_IsClosed", &[ring]).unwrap(), Value::Int(1));
        assert_eq!(
            call(FunctionMode::Exact, "ST_StartPoint", std::slice::from_ref(&line)).unwrap(),
            geom("POINT (0 0)")
        );
        assert_eq!(call(FunctionMode::Exact, "ST_EndPoint", &[line]).unwrap(), geom("POINT (1 1)"));
        assert_eq!(
            call(FunctionMode::Exact, "ST_IsEmpty", &[geom("POINT EMPTY")]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn collection_accessors() {
        let mp = geom("MULTIPOINT ((0 0), (1 1), (2 2))");
        assert_eq!(
            call(FunctionMode::Exact, "ST_NumGeometries", std::slice::from_ref(&mp)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_GeometryN", &[mp.clone(), Value::Int(2)]).unwrap(),
            geom("POINT (1 1)")
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_GeometryN", &[mp, Value::Int(9)]).unwrap(),
            Value::Null
        );
        // Single geometry behaves like a 1-element collection.
        let p = geom("POINT (5 5)");
        assert_eq!(
            call(FunctionMode::Exact, "ST_NumGeometries", std::slice::from_ref(&p)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_GeometryN", &[p.clone(), Value::Int(1)]).unwrap(),
            p
        );
    }

    #[test]
    fn point_on_surface_is_interior() {
        // A concave polygon whose envelope centre is OUTSIDE it.
        let u = geom("POLYGON ((0 0, 6 0, 6 6, 4 6, 4 2, 2 2, 2 6, 0 6, 0 0))");
        let r = call(FunctionMode::Exact, "ST_PointOnSurface", std::slice::from_ref(&u)).unwrap();
        let within = call(FunctionMode::Exact, "ST_Within", &[r, u]).unwrap();
        assert_eq!(within, Value::Int(1));
    }

    #[test]
    fn wkb_hex_roundtrip() {
        let g = geom("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        let hexv = call(FunctionMode::Exact, "ST_AsBinary", std::slice::from_ref(&g)).unwrap();
        let hex = hexv.as_str().unwrap().to_string();
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        let back = call(FunctionMode::Exact, "ST_GeomFromWKB", &[Value::Text(hex)]).unwrap();
        assert_eq!(back, g);
        // Malformed input is an error, not a panic.
        assert!(call(FunctionMode::Exact, "ST_GeomFromWKB", &[Value::Text("zz".into())]).is_err());
        assert!(call(FunctionMode::Exact, "ST_GeomFromWKB", &[Value::Text("ABC".into())]).is_err());
    }

    #[test]
    fn affine_functions_via_sql_registry() {
        let g = geom("POINT (1 2)");
        assert_eq!(
            call(FunctionMode::Exact, "ST_Translate", &[g.clone(), Value::Int(3), Value::Int(4)])
                .unwrap(),
            geom("POINT (4 6)")
        );
        assert_eq!(
            call(FunctionMode::Exact, "ST_Scale", &[g.clone(), Value::Int(2), Value::Int(3)])
                .unwrap(),
            geom("POINT (2 6)")
        );
        // MBR-only profile lacks affine editing.
        assert!(call(FunctionMode::MbrOnly, "ST_Translate", &[g, Value::Int(1), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn geodetic_functions_via_sql_registry() {
        let a = geom("POINT (0 0)");
        let b = geom("POINT (0 1)");
        let d = call(FunctionMode::Exact, "ST_DistanceSphere", &[a.clone(), b]).unwrap();
        let m = d.as_f64().unwrap();
        assert!((m - 111_195.0).abs() < 300.0, "1 degree = {m} m");
        assert!(call(FunctionMode::MbrOnly, "ST_DistanceSphere", &[a.clone(), a]).is_err());
    }
}
