//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{BinOp, Expr, Select, SelectItem, Statement, TableRef};
use crate::token::{tokenize, Token, TokenKind};
use crate::{Result, SqlError};
use jackpine_storage::Value;

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse { position: self.position(), message: message.into() }
    }

    /// Consumes the given keyword (case-insensitive) if present.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn accept(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.accept(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        // A trailing semicolon is tolerated... we have no semicolon token,
        // so simply require EOF.
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            _ => Err(self.err("expected an identifier")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw("EXPLAIN") {
            if self.accept_kw("ANALYZE") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.accept_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&TokenKind::Eq, "'='")?;
                assignments.push((col, self.expr()?));
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            let mut filters = Vec::new();
            if self.accept_kw("WHERE") {
                self.expr()?.split_conjunction(&mut filters);
            }
            return Ok(Statement::Update { table, assignments, filters });
        }
        if self.accept_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let mut filters = Vec::new();
            if self.accept_kw("WHERE") {
                self.expr()?.split_conjunction(&mut filters);
            }
            return Ok(Statement::Delete { table, filters });
        }
        if self.accept_kw("SELECT") {
            return Ok(Statement::Select(self.select_body()?));
        }
        if self.accept_kw("CREATE") {
            self.expect_kw("TABLE")?;
            return self.create_table();
        }
        if self.accept_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.accept_kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.insert();
        }
        Err(self.err("expected SELECT, EXPLAIN, DELETE, UPDATE, CREATE/DROP TABLE or INSERT INTO"))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            columns.push((col, ty));
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            rows.push(row);
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select_body(&mut self) -> Result<Select> {
        // Projection list.
        let mut items = Vec::new();
        loop {
            if self.accept(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_kw("AS") { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }

        // FROM is optional: `SELECT <expr>` evaluates over a single
        // empty tuple (constant queries like `SELECT ST_Area(...)`).
        let mut from = Vec::new();
        let mut filters: Vec<Expr> = Vec::new();
        if self.accept_kw("FROM") {
            from.push(self.table_ref()?);
        }
        loop {
            if from.is_empty() {
                break;
            }
            if self.accept(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            } else if self.accept_kw("JOIN") || {
                // INNER JOIN
                if self.accept_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                from.push(self.table_ref()?);
                self.expect_kw("ON")?;
                self.expr()?.split_conjunction(&mut filters);
            } else {
                break;
            }
        }

        if self.accept_kw("WHERE") {
            self.expr()?.split_conjunction(&mut filters);
        }

        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.accept_kw("DESC") {
                    false
                } else {
                    self.accept_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.accept(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.accept_kw("LIMIT") {
            match self.advance() {
                TokenKind::Number(n) => {
                    Some(n.parse::<usize>().map_err(|_| self.err("LIMIT must be an integer"))?)
                }
                _ => return Err(self.err("expected a number after LIMIT")),
            }
        } else {
            None
        };

        Ok(Select { items, from, filters, group_by, order_by, limit })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            TokenKind::Ident(s) if !is_clause_keyword(s) => {
                let a = s.clone();
                self.advance();
                a
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // BETWEEN lo AND hi
        if self.accept_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between { expr: Box::new(left), lo: Box::new(lo), hi: Box::new(hi) });
        }
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.accept(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Number(n) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|f| Expr::Literal(Value::Float(f)))
                        .map_err(|_| self.err("malformed number"))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Literal(Value::Int(i)))
                        .map_err(|_| self.err("malformed integer"))
                }
            }
            TokenKind::StringLit(s) => Ok(Expr::Literal(Value::Text(s))),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Int(1)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Int(0)));
                }
                if self.accept(&TokenKind::LParen) {
                    // Function call.
                    let mut args = Vec::new();
                    if !self.accept(&TokenKind::RParen) {
                        loop {
                            if self.accept(&TokenKind::Star) {
                                args.push(Expr::Star);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.accept(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen, "')'")?;
                    }
                    return Ok(Expr::Func { name, args });
                }
                if self.accept(&TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: [&str; 11] =
        ["WHERE", "JOIN", "INNER", "ON", "ORDER", "LIMIT", "GROUP", "AND", "OR", "AS", "FROM"];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT * FROM roads");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from, vec![TableRef { table: "roads".into(), alias: "roads".into() }]);
        assert!(s.filters.is_empty());
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let s = sel("SELECT a.id, b.name AS bn FROM arealm a, areawater b WHERE a.id = b.id");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias, "a");
        assert_eq!(s.filters.len(), 1);
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("bn")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spatial_function_calls() {
        let s = sel("SELECT COUNT(*) FROM arealm a JOIN areawater b \
             ON ST_Overlaps(a.geom, b.geom) WHERE a.id > 5");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.filters.len(), 2); // ON term + WHERE term
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Func { name, args }, .. } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &vec![Expr::Star]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_conjunction_is_split() {
        let s = sel("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3");
        assert_eq!(s.filters.len(), 3);
        // OR stays intact.
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2");
        assert_eq!(s.filters.len(), 1);
    }

    #[test]
    fn order_and_limit() {
        let s = sel("SELECT * FROM t ORDER BY a DESC, b LIMIT 10");
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1);
        assert!(s.order_by[1].1);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_and_is_null() {
        let s = sel("SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y IS NOT NULL");
        assert_eq!(s.filters.len(), 2);
        assert!(matches!(s.filters[0], Expr::Between { .. }));
        assert!(matches!(s.filters[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn create_and_insert() {
        match parse("CREATE TABLE roads (id BIGINT, name TEXT, geom GEOMETRY)").unwrap() {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "roads");
                assert_eq!(columns.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("INSERT INTO roads VALUES (1, 'Oak', NULL), (2, 'Elm', NULL)").unwrap() {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "roads");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
        assert!(matches!(parse("DROP TABLE t").unwrap(), Statement::DropTable { .. }));
        assert!(parse("DROP t").is_err());
        assert!(parse("DELETE t").is_err()); // missing FROM
        assert!(parse("SELECT * FROM t LIMIT abc").is_err());
    }

    #[test]
    fn string_literal_geometry() {
        let s = sel("SELECT * FROM t WHERE ST_Within(geom, ST_GeomFromText('POINT (1 2)'))");
        assert_eq!(s.filters.len(), 1);
    }
}
