//! Prepared-geometry cache for the refine stage.
//!
//! An index-nested-loop spatial join evaluates its predicate against the
//! same inner-table geometry once per candidate *pair*, so the cost of
//! building a [`PreparedGeometry`] (monotone chains, edge bins) is repaid
//! many times over — but only if the preparation survives from one pair
//! to the next. This cache holds preparations keyed by the physical
//! identity of the heap row the geometry came from: the `Arc` pointer of
//! the row handle plus the column offset inside it.
//!
//! Keying by pointer identity is sound because every entry *pins* its
//! row handle: while the entry lives, the allocation cannot be freed and
//! the address cannot be reused by a different row. A deleted row's
//! entry is merely dead weight (its row never flows through the executor
//! again), and an updated row is a delete-plus-reinsert that arrives
//! under a fresh `Arc` — a guaranteed miss. The engine still clears the
//! cache wholesale on DML and index drops to bound that dead weight.
//!
//! The cache is capacity-bounded with clear-when-full semantics, the
//! same policy as the engine's fingerprint cache: benchmark loops touch
//! a bounded working set, so eviction sophistication buys nothing.

use jackpine_geom::Geometry;
use jackpine_obs::EngineMetrics;
use jackpine_storage::sync::RwLock;
use jackpine_storage::Row;
use jackpine_topo::PreparedGeometry;
use std::collections::HashMap;
use std::sync::Arc;

/// Prepared geometries retained before the cache clears itself.
pub const PREPARED_CACHE_CAPACITY: usize = 1024;

/// One cached preparation, pinning the heap row whose address keys it.
struct Entry {
    /// Keeps the row allocation alive so the keying address cannot be
    /// reused by a different row while this entry exists.
    _pin: Arc<Row>,
    prepared: Arc<PreparedGeometry>,
}

/// A concurrent, capacity-bounded cache of [`PreparedGeometry`]s keyed
/// by heap-row identity. Shared by reference between the engine (which
/// invalidates it on DML) and the executor (which populates it during
/// refine).
#[derive(Default)]
pub struct PreparedCache {
    map: RwLock<HashMap<(usize, usize), Entry>>,
}

impl std::fmt::Debug for PreparedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedCache").field("len", &self.len()).finish()
    }
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> PreparedCache {
        PreparedCache::default()
    }

    /// Drops every cached preparation (DML / index-drop invalidation).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// `true` when no preparations are cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// The preparation of column `col` of the heap row behind `part`,
    /// building and caching it on first sight. `g` must be the geometry
    /// stored at that column. Records hit/miss counters when metrics are
    /// attached.
    pub(crate) fn get_or_prepare(
        &self,
        part: &Arc<Row>,
        col: usize,
        g: &Geometry,
        metrics: Option<&EngineMetrics>,
    ) -> Arc<PreparedGeometry> {
        let key = (Arc::as_ptr(part) as usize, col);
        if let Some(e) = self.map.read().get(&key) {
            if let Some(m) = metrics {
                m.prepared_cache_hits.incr();
            }
            return e.prepared.clone();
        }
        if let Some(m) = metrics {
            m.prepared_cache_misses.incr();
        }
        // Build outside any lock: preparation is the expensive part.
        let prepared = Arc::new(PreparedGeometry::new(g));
        let mut map = self.map.write();
        if map.len() >= PREPARED_CACHE_CAPACITY {
            map.clear();
        }
        let entry = map
            .entry(key)
            .or_insert_with(|| Entry { _pin: Arc::clone(part), prepared: Arc::clone(&prepared) });
        Arc::clone(&entry.prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;
    use jackpine_storage::Value;

    fn row_with_geom(text: &str) -> Arc<Row> {
        Arc::new(vec![Value::Int(1), Value::Geom(wkt::parse(text).unwrap())])
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PreparedCache::new();
        let m = EngineMetrics::new();
        let row = row_with_geom("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        let Some(Value::Geom(g)) = row.get(1) else { panic!() };
        let a = cache.get_or_prepare(&row, 1, g, Some(&m));
        let b = cache.get_or_prepare(&row, 1, g, Some(&m));
        assert!(Arc::ptr_eq(&a, &b), "same row must reuse the preparation");
        assert_eq!(m.prepared_cache_hits.get(), 1);
        assert_eq!(m.prepared_cache_misses.get(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_rows_get_distinct_entries() {
        let cache = PreparedCache::new();
        let r1 = row_with_geom("POINT (1 1)");
        let r2 = row_with_geom("POINT (2 2)");
        for r in [&r1, &r2] {
            let Some(Value::Geom(g)) = r.get(1) else { panic!() };
            cache.get_or_prepare(r, 1, g, None);
        }
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn clears_when_full() {
        let cache = PreparedCache::new();
        let mut rows = Vec::new();
        for i in 0..PREPARED_CACHE_CAPACITY + 1 {
            let r = row_with_geom(&format!("POINT ({i} 0)"));
            let Some(Value::Geom(g)) = r.get(1) else { panic!() };
            cache.get_or_prepare(&r, 1, g, None);
            rows.push(r); // keep the Arcs alive so keys stay distinct
        }
        assert!(cache.len() <= PREPARED_CACHE_CAPACITY, "capacity must bound the cache");
    }
}
