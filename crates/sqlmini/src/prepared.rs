//! Prepared-geometry cache for the refine stage.
//!
//! An index-nested-loop spatial join evaluates its predicate against the
//! same inner-table geometry once per candidate *pair*, so the cost of
//! building a [`PreparedGeometry`] (monotone chains, edge bins) is repaid
//! many times over — but only if the preparation survives from one pair
//! to the next. This cache holds preparations keyed by the physical
//! identity of the heap row the geometry came from: the `Arc` pointer of
//! the row handle plus the column offset inside it.
//!
//! Keying by pointer identity is sound because every entry *pins* its
//! row handle: while the entry lives, the allocation cannot be freed and
//! the address cannot be reused by a different row. A deleted row's
//! entry is merely dead weight (its row never flows through the executor
//! again), and an updated row is a delete-plus-reinsert that arrives
//! under a fresh `Arc` — a guaranteed miss. The engine still clears the
//! cache wholesale on DML and index drops to bound that dead weight.
//!
//! The cache is capacity-bounded. Overflow used to clear the map
//! wholesale, which dumps hot preparations under churn (a join whose
//! inner working set slightly exceeds capacity re-prepares *everything*
//! each round). It now evicts only the least-recently-hit quarter of the
//! entries: each hit stamps its entry from a global monotone tick, and
//! overflow drops the entries below the quarter-quantile stamp, so hot
//! inner geometries survive.

use jackpine_geom::Geometry;
use jackpine_obs::EngineMetrics;
use jackpine_storage::sync::RwLock;
use jackpine_storage::Row;
use jackpine_topo::PreparedGeometry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Prepared geometries retained before eviction kicks in.
pub const PREPARED_CACHE_CAPACITY: usize = 1024;

/// Denominator of the eviction fraction: a full cache drops the
/// least-recently-hit `1/EVICT_DENOMINATOR` of its entries.
const EVICT_DENOMINATOR: usize = 4;

/// One cached preparation, pinning the heap row whose address keys it.
struct Entry {
    /// Keeps the row allocation alive so the keying address cannot be
    /// reused by a different row while this entry exists.
    _pin: Arc<Row>,
    prepared: Arc<PreparedGeometry>,
    /// Tick of the most recent hit (or the insert), from the cache's
    /// global counter. Updated under the read lock — stamping a hit must
    /// not serialize concurrent refine workers.
    last_hit: AtomicU64,
}

/// A concurrent, capacity-bounded cache of [`PreparedGeometry`]s keyed
/// by heap-row identity. Shared by reference between the engine (which
/// invalidates it on DML) and the executor (which populates it during
/// refine).
#[derive(Default)]
pub struct PreparedCache {
    map: RwLock<HashMap<(usize, usize), Entry>>,
    /// Monotone hit/insert tick feeding the eviction stamps.
    tick: AtomicU64,
    /// Entries evicted by capacity overflow (not by `clear`).
    evicted: AtomicU64,
}

impl std::fmt::Debug for PreparedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedCache").field("len", &self.len()).finish()
    }
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> PreparedCache {
        PreparedCache::default()
    }

    /// Drops every cached preparation (DML / index-drop invalidation).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// `true` when no preparations are cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Entries evicted by capacity overflow over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// The preparation of column `col` of the heap row behind `part`,
    /// building and caching it on first sight. `g` must be the geometry
    /// stored at that column. Records hit/miss counters when metrics are
    /// attached.
    pub(crate) fn get_or_prepare(
        &self,
        part: &Arc<Row>,
        col: usize,
        g: &Geometry,
        metrics: Option<&EngineMetrics>,
    ) -> Arc<PreparedGeometry> {
        let key = (Arc::as_ptr(part) as usize, col);
        if let Some(e) = self.map.read().get(&key) {
            e.last_hit.store(self.next_tick(), Ordering::Relaxed);
            if let Some(m) = metrics {
                m.prepared_cache_hits.incr();
            }
            return e.prepared.clone();
        }
        if let Some(m) = metrics {
            m.prepared_cache_misses.incr();
        }
        // Build outside any lock: preparation is the expensive part.
        let prepared = Arc::new(PreparedGeometry::new(g));
        let mut map = self.map.write();
        if map.len() >= PREPARED_CACHE_CAPACITY {
            let dropped = evict_least_recently_hit(&mut map);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
            if let Some(m) = metrics {
                m.prepared_cache_evictions.add(dropped);
            }
        }
        let entry = map.entry(key).or_insert_with(|| Entry {
            _pin: Arc::clone(part),
            prepared: Arc::clone(&prepared),
            last_hit: AtomicU64::new(self.next_tick()),
        });
        Arc::clone(&entry.prepared)
    }
}

/// Drops the coldest `1/EVICT_DENOMINATOR` of the map by hit stamp and
/// returns how many entries left. Stamps are unique (one tick per hit or
/// insert), so the quantile cut is exact.
fn evict_least_recently_hit(map: &mut HashMap<(usize, usize), Entry>) -> u64 {
    let target = (map.len() / EVICT_DENOMINATOR).max(1);
    let mut stamps: Vec<u64> = map.values().map(|e| e.last_hit.load(Ordering::Relaxed)).collect();
    let (_, threshold, _) = stamps.select_nth_unstable(target - 1);
    let threshold = *threshold;
    let before = map.len();
    map.retain(|_, e| e.last_hit.load(Ordering::Relaxed) > threshold);
    (before - map.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;
    use jackpine_storage::Value;

    fn row_with_geom(text: &str) -> Arc<Row> {
        Arc::new(vec![Value::Int(1), Value::Geom(wkt::parse(text).unwrap())])
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PreparedCache::new();
        let m = EngineMetrics::new();
        let row = row_with_geom("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        let Some(Value::Geom(g)) = row.get(1) else { panic!() };
        let a = cache.get_or_prepare(&row, 1, g, Some(&m));
        let b = cache.get_or_prepare(&row, 1, g, Some(&m));
        assert!(Arc::ptr_eq(&a, &b), "same row must reuse the preparation");
        assert_eq!(m.prepared_cache_hits.get(), 1);
        assert_eq!(m.prepared_cache_misses.get(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_rows_get_distinct_entries() {
        let cache = PreparedCache::new();
        let r1 = row_with_geom("POINT (1 1)");
        let r2 = row_with_geom("POINT (2 2)");
        for r in [&r1, &r2] {
            let Some(Value::Geom(g)) = r.get(1) else { panic!() };
            cache.get_or_prepare(r, 1, g, None);
        }
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn overflow_evicts_a_fraction_and_keeps_hot_entries() {
        let cache = PreparedCache::new();
        let m = EngineMetrics::new();
        let mut rows = Vec::new();
        for i in 0..PREPARED_CACHE_CAPACITY {
            let r = row_with_geom(&format!("POINT ({i} 0)"));
            let Some(Value::Geom(g)) = r.get(1) else { panic!() };
            cache.get_or_prepare(&r, 1, g, None);
            rows.push(r); // keep the Arcs alive so keys stay distinct
        }
        assert_eq!(cache.len(), PREPARED_CACHE_CAPACITY);

        // Re-hit the first entry so its stamp beats every cold insert.
        let hot = &rows[0];
        let Some(Value::Geom(hot_g)) = hot.get(1) else { panic!() };
        let hot_prep = cache.get_or_prepare(hot, 1, hot_g, None);

        // One more insert overflows the cache and triggers eviction.
        let extra = row_with_geom("POINT (-1 -1)");
        let Some(Value::Geom(g)) = extra.get(1) else { panic!() };
        cache.get_or_prepare(&extra, 1, g, Some(&m));

        let evicted = PREPARED_CACHE_CAPACITY / 4;
        assert_eq!(cache.len(), PREPARED_CACHE_CAPACITY - evicted + 1);
        assert_eq!(cache.evictions(), evicted as u64);
        assert_eq!(m.prepared_cache_evictions.get(), evicted as u64);

        // The hot entry survived: probing it again returns the same
        // preparation without a fresh miss.
        let again = cache.get_or_prepare(hot, 1, hot_g, Some(&m));
        assert!(Arc::ptr_eq(&hot_prep, &again), "hot entry must survive eviction");
        assert_eq!(m.prepared_cache_hits.get(), 1, "hot probe must hit");
        assert_eq!(m.prepared_cache_misses.get(), 1, "only the overflow insert missed");
    }
}
