//! # jackpine-sqlmini
//!
//! A small SQL engine purpose-built for the Jackpine benchmark: enough of
//! the language to express every micro-benchmark query and macro-scenario
//! step, executed through a planner that knows how to use spatial and
//! ordered indexes.
//!
//! Pipeline: [`token`] → [`parser`] → bind/plan ([`plan`]) → execute
//! ([`exec`]). Spatial semantics live in [`functions`]; the
//! [`FunctionMode`] switch implements the MBR-only predicate semantics of
//! the MySQL-era engine profile.
//!
//! The engine is storage-agnostic: it consumes tables through the
//! [`provider::CatalogProvider`] / [`provider::TableProvider`] traits that
//! `jackpine-engine` implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod batch;
mod error;
pub mod exec;
pub mod fingerprint;
pub mod functions;
pub mod parser;
pub mod plan;
pub mod prepared;
pub mod provider;
pub mod token;
pub mod virt;

pub use error::SqlError;
pub use exec::{execute, ResultSet};
pub use functions::FunctionMode;
pub use plan::{plan_select, PlanNode, PlanOptions};
pub use prepared::PreparedCache;

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;
