//! Statement normalization for query fingerprinting.
//!
//! [`normalize`] folds a statement to its *shape*: literals become `?`,
//! identifiers and keywords are lowercased, and whitespace/comments
//! collapse to single separators, so `SELECT * FROM t WHERE id = 7` and
//! `select  *  from T where ID=42 -- hot` normalize identically. The
//! `obs` crate hashes the normalized text into the stable fingerprint
//! digest that keys the per-statement stats table.
//!
//! Normalization rides the real tokenizer rather than regex-mangling the
//! text, so it is literal-exact: string contents, escapes and comments
//! can never leak into the shape. Statements that fail to tokenize fall
//! back to a lossier character-level fold (lowercase + whitespace
//! collapse) — errors still deserve a fingerprint, or the error counts
//! in the stats table would have nowhere to live.

use crate::token::{tokenize, TokenKind};

/// Normalizes a statement to its fingerprint shape.
pub fn normalize(sql: &str) -> String {
    match tokenize(sql) {
        Ok(tokens) => {
            let mut out = String::with_capacity(sql.len());
            for t in &tokens {
                let piece: &str = match &t.kind {
                    TokenKind::Ident(s) => {
                        if !out.is_empty() {
                            out.push(' ');
                        }
                        out.extend(s.chars().flat_map(char::to_lowercase));
                        continue;
                    }
                    TokenKind::Number(_) | TokenKind::StringLit(_) => "?",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Star => "*",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Slash => "/",
                    TokenKind::Eq => "=",
                    TokenKind::Neq => "<>",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::Eof => continue,
                };
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(piece);
            }
            out
        }
        Err(_) => {
            // Untokenizable text: lowercase and collapse whitespace so
            // repeated occurrences of the same broken statement still
            // share a fingerprint.
            let mut out = String::with_capacity(sql.len());
            let mut pending_space = false;
            for c in sql.chars() {
                if c.is_whitespace() {
                    pending_space = !out.is_empty();
                } else {
                    if pending_space {
                        out.push(' ');
                        pending_space = false;
                    }
                    out.extend(c.to_lowercase());
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_fold_to_placeholder() {
        assert_eq!(
            normalize("SELECT * FROM t WHERE id = 7"),
            normalize("SELECT * FROM t WHERE id = 42")
        );
        assert_eq!(
            normalize("SELECT name FROM t WHERE name = 'Main St'"),
            normalize("SELECT name FROM t WHERE name = 'Elm Ave'")
        );
        assert_eq!(normalize("SELECT 1"), "select ?");
    }

    #[test]
    fn case_whitespace_and_comments_fold() {
        assert_eq!(
            normalize("select  a.B ,c FROM  T -- comment\n WHERE x>=1"),
            normalize("SELECT A.b, C from t where X >= 2.5")
        );
        assert_eq!(normalize("SELECT a FROM t"), "select a from t");
    }

    #[test]
    fn distinct_shapes_stay_distinct() {
        assert_ne!(normalize("SELECT a FROM t"), normalize("SELECT b FROM t"));
        assert_ne!(normalize("SELECT a FROM t WHERE x = 1"), normalize("SELECT a FROM t"));
        assert_ne!(
            normalize("SELECT a FROM t WHERE x < 1"),
            normalize("SELECT a FROM t WHERE x <= 1")
        );
    }

    #[test]
    fn literal_contents_never_leak() {
        // A string literal containing keywords must not change the shape.
        assert_eq!(
            normalize("SELECT a FROM t WHERE s = 'DROP TABLE u'"),
            normalize("SELECT a FROM t WHERE s = 'x'")
        );
    }

    #[test]
    fn untokenizable_falls_back_to_character_fold() {
        let n = normalize("SELECT # broken");
        assert_eq!(n, "select # broken");
        assert_eq!(n, normalize("  select   #  BROKEN "));
    }
}
