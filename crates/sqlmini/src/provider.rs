//! Storage-access traits the SQL engine consumes.
//!
//! `jackpine-engine` implements these over its catalog, heaps and indexes;
//! the planner and executor in this crate only ever see the traits, which
//! keeps the SQL layer portable across engine profiles — the role JDBC
//! plays in the original Jackpine.

use crate::Result;
use jackpine_geom::{Coord, Envelope};
use jackpine_storage::{Row, RowId, Schema, Value};
use std::sync::Arc;

/// A statement-scoped snapshot pin, created by the engine before a
/// SELECT executes and dropped when it finishes. The handle fixes one
/// commit generation for the whole statement — every table the plan
/// touches is pinned at the same generation, so multi-table reads are
/// consistent even while writers commit concurrently — and keeps that
/// generation's rows reclaimable-proof while any reader holds it.
pub trait SnapshotHandle: Send + Sync + std::fmt::Debug {
    /// The commit generation this handle pins.
    fn generation(&self) -> u64;
}

/// A readable table with optional index access paths.
pub trait TableProvider: Send + Sync {
    /// The table's schema.
    fn schema(&self) -> Arc<Schema>;

    /// Ids of all live rows (storage order).
    fn row_ids(&self) -> Vec<RowId>;

    /// Fetches one row.
    fn fetch(&self, id: RowId) -> Result<Arc<Row>>;

    /// Candidate rows whose geometry envelope (column `col`) intersects
    /// `env`, served by a spatial index. `None` when no usable index
    /// exists (the planner then falls back to a scan).
    fn spatial_candidates(&self, col: usize, env: &Envelope) -> Option<Vec<RowId>>;

    /// Rows whose column `col` equals `key`, served by an ordered index.
    fn ordered_candidates(&self, col: usize, key: &Value) -> Option<Vec<RowId>>;

    /// The `k` rows nearest to `query` by envelope distance of column
    /// `col`, served by a spatial index.
    fn nearest(&self, col: usize, query: Coord, k: usize) -> Option<Vec<RowId>>;

    /// Packed MBR quads (`[min_x, min_y, max_x, max_y]`, NaN bounds for
    /// empty geometries, `None` per row for non-geometry values) of
    /// column `col` for each id, in input order — the vectorized
    /// filter's column-gather path. Implementations without a fast MBR
    /// store return `None` and the executor computes envelopes from the
    /// fetched rows instead.
    fn fetch_mbrs(&self, _col: usize, _ids: &[RowId]) -> Option<Vec<Option<[f64; 4]>>> {
        None
    }

    /// A copy of this provider pinned to the statement snapshot `snap`:
    /// its reads observe exactly the rows visible at
    /// `snap.generation()`, regardless of concurrent writers. `None`
    /// (the default) means the provider has no snapshot support and the
    /// executor reads it live.
    fn pin_snapshot(&self, snap: &Arc<dyn SnapshotHandle>) -> Option<Arc<dyn TableProvider>> {
        let _ = snap;
        None
    }
}

/// Name → table resolution.
pub trait CatalogProvider: Send + Sync {
    /// Resolves a table by name (case-insensitive).
    fn table(&self, name: &str) -> Result<Arc<dyn TableProvider>>;
}
