//! Columnar MBR batches for the vectorized filter path.
//!
//! The vectorized executor carves filter inputs into fixed-size batches
//! (default [`DEFAULT_BATCH_SIZE`] rows). For each batch it gathers the
//! geometry MBRs of the predicate's column operands into an [`MbrColumn`]
//! — a structure-of-arrays layout with one contiguous `Vec<f64>` per
//! bound (`4 × f64` per row) — and runs the envelope intersection test
//! as a branch-free loop over the packed arrays. Rows the envelope test
//! decides are written straight into the batch's keep mask; the rest go
//! into a **selection vector** (ascending, duplicate-free row indexes)
//! that the refine stage walks with exact predicate evaluation.
//!
//! Empty envelopes are encoded as all-NaN quads: every comparison in the
//! positive-form test (`a.min <= b.max && b.min <= a.max && ...`) is
//! false against NaN, so empty geometries never intersect — exactly the
//! `Envelope::intersects` semantics. This is why the kernel uses the
//! positive form rather than the negated one (`!(a.min > b.max) ...`),
//! which would wrongly report intersection for NaN bounds.

/// Rows per batch in the vectorized filter path. 1024 quads of 4×f64
/// (32 KiB of bounds) sit comfortably in L1 next to the selection
/// vector; it is also the morsel size, so one morsel is one batch at
/// default settings.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A packed MBR quad: `[min_x, min_y, max_x, max_y]`. Empty envelopes
/// are all-NaN (see module docs).
pub type MbrQuad = [f64; 4];

/// One batch worth of MBRs in structure-of-arrays layout, plus a
/// validity mask for rows whose operand was not a plain geometry (NULL,
/// type mismatch): those rows carry NaN bounds and must be routed to the
/// generic fallback, never decided by the kernel.
#[derive(Debug, Default)]
pub struct MbrColumn {
    /// Lower x bound per row.
    pub min_x: Vec<f64>,
    /// Lower y bound per row.
    pub min_y: Vec<f64>,
    /// Upper x bound per row.
    pub max_x: Vec<f64>,
    /// Upper y bound per row.
    pub max_y: Vec<f64>,
    /// `true` where the row's operand was a geometry.
    pub valid: Vec<bool>,
}

impl MbrColumn {
    /// An empty column with room for `n` rows per bound array.
    pub fn with_capacity(n: usize) -> MbrColumn {
        MbrColumn {
            min_x: Vec::with_capacity(n),
            min_y: Vec::with_capacity(n),
            max_x: Vec::with_capacity(n),
            max_y: Vec::with_capacity(n),
            valid: Vec::with_capacity(n),
        }
    }

    /// Rows in the column.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Drops all rows, keeping the allocations for the next batch.
    pub fn clear(&mut self) {
        self.min_x.clear();
        self.min_y.clear();
        self.max_x.clear();
        self.max_y.clear();
        self.valid.clear();
    }

    /// Appends one row. `None` (non-geometry operand) pushes NaN bounds
    /// with `valid = false`.
    pub fn push(&mut self, quad: Option<MbrQuad>) {
        let [a, b, c, d] = quad.unwrap_or([f64::NAN; 4]);
        self.min_x.push(a);
        self.min_y.push(b);
        self.max_x.push(c);
        self.max_y.push(d);
        self.valid.push(quad.is_some());
    }

    /// Envelope-intersection test of every row against one constant
    /// quad, written into `hit` (resized to match). Branch-free positive
    /// form; NaN bounds on either side yield `false`.
    pub fn intersects_const(&self, c: MbrQuad, hit: &mut Vec<bool>) {
        hit.clear();
        hit.reserve(self.len());
        for i in 0..self.len() {
            hit.push(
                (self.min_x[i] <= c[2])
                    & (c[0] <= self.max_x[i])
                    & (self.min_y[i] <= c[3])
                    & (c[1] <= self.max_y[i]),
            );
        }
    }

    /// Row-wise envelope-intersection test against another column of the
    /// same length, written into `hit`.
    pub fn intersects_pairwise(&self, other: &MbrColumn, hit: &mut Vec<bool>) {
        debug_assert_eq!(self.len(), other.len());
        hit.clear();
        hit.reserve(self.len());
        for i in 0..self.len() {
            hit.push(
                (self.min_x[i] <= other.max_x[i])
                    & (other.min_x[i] <= self.max_x[i])
                    & (self.min_y[i] <= other.max_y[i])
                    & (other.min_y[i] <= self.max_y[i]),
            );
        }
    }
}

/// Debug check for the selection-vector invariant: indexes ascending,
/// duplicate-free, in range for a batch of `len` rows.
#[cfg(debug_assertions)]
pub fn selvec_is_sorted_unique(sel: &[u32], len: usize) -> bool {
    sel.windows(2).all(|w| w[0] < w[1]) && sel.last().is_none_or(|&i| (i as usize) < len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(quads: &[Option<MbrQuad>]) -> MbrColumn {
        let mut c = MbrColumn::with_capacity(quads.len());
        for q in quads {
            c.push(*q);
        }
        c
    }

    #[test]
    fn const_kernel_matches_envelope_semantics() {
        let c = col(&[
            Some([0.0, 0.0, 1.0, 1.0]), // overlaps
            Some([2.0, 2.0, 3.0, 3.0]), // disjoint
            Some([1.0, 1.0, 2.0, 2.0]), // touches at corner: intersects
            Some([f64::NAN; 4]),        // empty geometry: never intersects
            None,                       // invalid operand: NaN bounds, also false
        ]);
        let mut hit = Vec::new();
        c.intersects_const([0.5, 0.5, 1.5, 1.5], &mut hit);
        assert_eq!(hit, vec![true, false, true, false, false]);
        assert_eq!(c.valid, vec![true, true, true, true, false]);

        // An empty (NaN) probe intersects nothing.
        c.intersects_const([f64::NAN; 4], &mut hit);
        assert_eq!(hit, vec![false; 5]);
    }

    #[test]
    fn pairwise_kernel() {
        let a = col(&[Some([0.0, 0.0, 2.0, 2.0]), Some([0.0, 0.0, 1.0, 1.0]), None]);
        let b = col(&[Some([1.0, 1.0, 3.0, 3.0]), Some([5.0, 5.0, 6.0, 6.0]), Some([0.0; 4])]);
        let mut hit = Vec::new();
        a.intersects_pairwise(&b, &mut hit);
        assert_eq!(hit, vec![true, false, false]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = col(&[Some([0.0, 0.0, 1.0, 1.0]); 8]);
        assert_eq!(c.len(), 8);
        let cap = c.min_x.capacity();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.min_x.capacity(), cap);
    }
}
