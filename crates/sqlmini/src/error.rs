use std::fmt;

/// Errors from SQL parsing, planning and execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlError {
    /// The statement text could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The token stream does not form a valid statement.
    Parse {
        /// Byte position where parsing failed.
        position: usize,
        /// What was expected.
        message: String,
    },
    /// A name (table, column, alias, function) could not be resolved.
    Unresolved(String),
    /// An expression was applied to values of the wrong type.
    Type(String),
    /// The function exists but is not supported by the active engine
    /// profile (Jackpine's feature-matrix rows).
    UnsupportedFeature(String),
    /// Error bubbled up from the storage layer.
    Storage(String),
    /// Error bubbled up from geometry or topology computation.
    Geometry(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SqlError::Unresolved(n) => write!(f, "unresolved name: {n}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::UnsupportedFeature(m) => {
                write!(f, "feature not supported by this engine profile: {m}")
            }
            SqlError::Storage(m) => write!(f, "storage error: {m}"),
            SqlError::Geometry(m) => write!(f, "geometry error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<jackpine_storage::StorageError> for SqlError {
    fn from(e: jackpine_storage::StorageError) -> Self {
        SqlError::Storage(e.to_string())
    }
}

impl From<jackpine_geom::GeomError> for SqlError {
    fn from(e: jackpine_geom::GeomError) -> Self {
        SqlError::Geometry(e.to_string())
    }
}

impl From<jackpine_topo::TopoError> for SqlError {
    fn from(e: jackpine_topo::TopoError) -> Self {
        SqlError::Geometry(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SqlError::Parse { position: 12, message: "expected FROM".into() };
        assert!(e.to_string().contains("byte 12"));
        assert!(SqlError::UnsupportedFeature("ST_Buffer".into()).to_string().contains("ST_Buffer"));
    }
}
