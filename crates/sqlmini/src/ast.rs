//! Abstract syntax of the supported SQL subset.

use jackpine_storage::Value;

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Select),
    /// `CREATE TABLE name (col TYPE, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column name/type pairs (types as written).
        columns: Vec<(String, String)>,
    },
    /// `INSERT INTO name VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// One expression list per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE name SET col = expr [, ...] [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Conjunctive filter terms (empty = update everything).
        filters: Vec<Expr>,
    },
    /// `DELETE FROM name [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Conjunctive filter terms (empty = delete everything).
        filters: Vec<Expr>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `EXPLAIN SELECT ...` — show the plan instead of executing it.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE SELECT ...` — execute the statement and show its
    /// trace (per-stage timings and engine counters) instead of its rows.
    ExplainAnalyze(Box<Statement>),
}

/// A `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` tables (comma-joined and `JOIN ... ON` folded together, with
    /// the join conditions appended to `filters`).
    pub from: Vec<TableRef>,
    /// Conjunctive `WHERE`/`ON` terms.
    pub filters: Vec<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` expressions with ascending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// A projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name, if given.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// Binary operators in precedence groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified by table alias.
    Column {
        /// Qualifier (`a` in `a.geom`).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A function call such as `ST_Area(geom)`. `COUNT(*)` is parsed with
    /// a single [`Expr::Star`] argument.
    Func {
        /// Function name (case preserved; matched case-insensitively).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// The bare `*` inside `COUNT(*)`.
    Star,
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Flattens a conjunction tree into its terms; non-AND expressions
    /// yield themselves.
    pub fn split_conjunction(self, out: &mut Vec<Expr>) {
        match self {
            Expr::Binary { op: BinOp::And, left, right } => {
                left.split_conjunction(out);
                right.split_conjunction(out);
            }
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_splitting() {
        let a = Expr::Column { table: None, name: "a".into() };
        let b = Expr::Column { table: None, name: "b".into() };
        let c = Expr::Column { table: None, name: "c".into() };
        let e = Expr::binary(BinOp::And, Expr::binary(BinOp::And, a.clone(), b.clone()), c.clone());
        let mut terms = Vec::new();
        e.split_conjunction(&mut terms);
        assert_eq!(terms, vec![a, b, c]);

        // OR is not split.
        let o = Expr::binary(
            BinOp::Or,
            Expr::Column { table: None, name: "x".into() },
            Expr::Column { table: None, name: "y".into() },
        );
        let mut terms = Vec::new();
        o.clone().split_conjunction(&mut terms);
        assert_eq!(terms, vec![o]);
    }
}
