//! Binding and planning: turns a parsed `SELECT` into an executable plan
//! tree, choosing index access paths the way the benchmarked systems do
//! (filter on the spatial index, refine with the exact predicate).

use crate::ast::{BinOp, Expr, Select, SelectItem};
use crate::functions::{is_indexable_predicate, FunctionMode};
use crate::provider::{CatalogProvider, TableProvider};
use crate::{Result, SqlError};
use jackpine_storage::{DataType, Value};
use std::sync::Arc;

/// Planner switches, set by the engine profile.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Spatial semantics (exact vs. MBR-only).
    pub mode: FunctionMode,
    /// Whether spatial indexes may be used (off = sequential refine, the
    /// F5 indexing experiment's baseline).
    pub use_spatial_index: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { mode: FunctionMode::Exact, use_spatial_index: true }
    }
}

/// An expression with column references resolved to tuple offsets.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    /// A constant.
    Literal(Value),
    /// Tuple column by offset.
    Column(usize),
    /// Function call.
    Func {
        /// Function name.
        name: String,
        /// Bound arguments.
        args: Vec<BoundExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Logical NOT.
    Not(Box<BoundExpr>),
    /// Numeric negation.
    Neg(Box<BoundExpr>),
    /// Range test.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Inclusive lower bound.
        lo: Box<BoundExpr>,
        /// Inclusive upper bound.
        hi: Box<BoundExpr>,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
}

impl BoundExpr {
    /// `true` when the expression references no tuple columns (safe to
    /// evaluate once, before execution).
    pub fn is_constant(&self) -> bool {
        match self {
            BoundExpr::Literal(_) => true,
            BoundExpr::Column(_) => false,
            BoundExpr::Func { args, .. } => args.iter().all(BoundExpr::is_constant),
            BoundExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BoundExpr::Not(e) | BoundExpr::Neg(e) => e.is_constant(),
            BoundExpr::Between { expr, lo, hi } => {
                expr.is_constant() && lo.is_constant() && hi.is_constant()
            }
            BoundExpr::IsNull { expr, .. } => expr.is_constant(),
        }
    }
}

/// One output column of a grouped aggregation.
#[derive(Clone, Debug)]
pub enum AggOutput {
    /// The i-th grouping key.
    Group(usize),
    /// An aggregate over the group's rows.
    Agg(AggExpr),
}

/// An aggregate in the projection list.
#[derive(Clone, Debug)]
pub enum AggExpr {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` — non-NULL count.
    Count(BoundExpr),
    /// `SUM(expr)`
    Sum(BoundExpr),
    /// `AVG(expr)`
    Avg(BoundExpr),
    /// `MIN(expr)`
    Min(BoundExpr),
    /// `MAX(expr)`
    Max(BoundExpr),
}

/// An executable plan node. Tuples flow bottom-up; each node's output
/// layout is fixed at plan time.
pub enum PlanNode {
    /// Produces exactly one empty tuple (FROM-less constant queries).
    SingleRow,
    /// Full table scan.
    Scan {
        /// Source table.
        table: Arc<dyn TableProvider>,
    },
    /// Spatial-index window scan: candidates whose envelope intersects the
    /// (constant) query envelope. Falls back to a full scan when the table
    /// has no index on the column.
    SpatialIndexScan {
        /// Source table.
        table: Arc<dyn TableProvider>,
        /// Geometry column index in the table.
        col: usize,
        /// Constant expression producing the query geometry.
        query: BoundExpr,
        /// Constant expansion distance (for `ST_DWithin`).
        expand: Option<BoundExpr>,
    },
    /// Ordered-index equality scan. Falls back to a full scan without an
    /// index.
    OrderedIndexScan {
        /// Source table.
        table: Arc<dyn TableProvider>,
        /// Key column index in the table.
        col: usize,
        /// Constant key expression.
        key: BoundExpr,
    },
    /// k-nearest-neighbour scan (reverse geocoding's access path).
    KnnScan {
        /// Source table.
        table: Arc<dyn TableProvider>,
        /// Geometry column index in the table.
        col: usize,
        /// Constant query geometry expression.
        query: BoundExpr,
        /// Number of candidates to fetch (includes refinement slack).
        k: usize,
    },
    /// Tuple filter.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// Predicate over the input layout.
        predicate: BoundExpr,
    },
    /// Cross product (filters above restore join semantics).
    NestedLoopJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// Index nested-loop spatial join: for each left tuple, probe the
    /// right table's spatial index with the left geometry's envelope.
    SpatialIndexJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right (probed) table.
        right: Arc<dyn TableProvider>,
        /// Geometry column in the right table.
        right_col: usize,
        /// Expression over the *left* tuple producing the probe geometry.
        probe: BoundExpr,
        /// Constant probe-envelope expansion (for `ST_DWithin` joins).
        expand: Option<BoundExpr>,
    },
    /// Projection.
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// Output expressions with labels.
        exprs: Vec<(BoundExpr, String)>,
    },
    /// Aggregation, optionally grouped.
    Aggregate {
        /// Input node.
        input: Box<PlanNode>,
        /// Grouping key expressions (empty = one global group).
        group_by: Vec<BoundExpr>,
        /// Output columns in projection order.
        outputs: Vec<(AggOutput, String)>,
    },
    /// Sort by key expressions (ascending flags per key).
    Sort {
        /// Input node.
        input: Box<PlanNode>,
        /// Sort keys over the input layout.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input node.
        input: Box<PlanNode>,
        /// Maximum rows.
        n: usize,
    },
}

/// One table's slice of the flat tuple layout.
struct BoundTable {
    alias: String,
    provider: Arc<dyn TableProvider>,
    offset: usize,
    geometry_cols: Vec<usize>,
}

/// The flat layout: qualified column names in tuple order.
struct Layout {
    tables: Vec<BoundTable>,
    columns: Vec<(String, String)>, // (alias, column)
}

impl Layout {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut hit = None;
        for (i, (alias, col)) in self.columns.iter().enumerate() {
            let table_ok = table.is_none_or(|t| t.eq_ignore_ascii_case(alias));
            if table_ok && col.eq_ignore_ascii_case(name) {
                if hit.is_some() && table.is_none() {
                    return Err(SqlError::Unresolved(format!("ambiguous column '{name}'")));
                }
                hit = Some(i);
                if table.is_some() {
                    break;
                }
            }
        }
        hit.ok_or_else(|| {
            SqlError::Unresolved(match table {
                Some(t) => format!("column '{t}.{name}'"),
                None => format!("column '{name}'"),
            })
        })
    }

    /// Offsets covered by the table at `idx`.
    fn table_range(&self, idx: usize) -> std::ops::Range<usize> {
        let start = self.tables[idx].offset;
        let end = self.tables.get(idx + 1).map_or(self.columns.len(), |t| t.offset);
        start..end
    }
}

/// Binds `expr` against `layout`, folding constant subtrees.
fn bind(expr: &Expr, layout: &Layout) -> Result<BoundExpr> {
    let bound = bind_raw(expr, layout)?;
    Ok(fold_constants(bound))
}

/// Evaluates constant subexpressions once at plan time, so per-row
/// evaluation never re-parses WKT literals or re-buffers constant
/// geometries. Folding uses exact semantics; it never folds function
/// calls whose availability depends on the engine profile, so the
/// MBR-only profile still reports its missing functions at run time.
fn fold_constants(e: BoundExpr) -> BoundExpr {
    // Only fold cheap, profile-independent constructors; predicate and
    // analysis calls are left for the evaluator, where the engine profile
    // decides their semantics and availability.
    const FOLDABLE: [&str; 4] = ["ST_GEOMFROMTEXT", "ST_POINT", "ST_MAKEPOINT", "ST_MAKEENVELOPE"];
    match e {
        BoundExpr::Func { name, args } => {
            let args: Vec<BoundExpr> = args.into_iter().map(fold_constants).collect();
            let folded = BoundExpr::Func { name: name.clone(), args };
            if FOLDABLE.contains(&name.to_ascii_uppercase().as_str()) && folded.is_constant() {
                if let BoundExpr::Func { name, args } = &folded {
                    let vals: Option<Vec<Value>> = args
                        .iter()
                        .map(|a| match a {
                            BoundExpr::Literal(v) => Some(v.clone()),
                            _ => None,
                        })
                        .collect();
                    if let Some(vals) = vals {
                        if let Ok(v) = crate::functions::call(FunctionMode::Exact, name, &vals) {
                            return BoundExpr::Literal(v);
                        }
                    }
                }
            }
            folded
        }
        BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
            op,
            left: Box::new(fold_constants(*left)),
            right: Box::new(fold_constants(*right)),
        },
        BoundExpr::Not(inner) => BoundExpr::Not(Box::new(fold_constants(*inner))),
        BoundExpr::Neg(inner) => BoundExpr::Neg(Box::new(fold_constants(*inner))),
        BoundExpr::Between { expr, lo, hi } => BoundExpr::Between {
            expr: Box::new(fold_constants(*expr)),
            lo: Box::new(fold_constants(*lo)),
            hi: Box::new(fold_constants(*hi)),
        },
        BoundExpr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(fold_constants(*expr)), negated }
        }
        other => other,
    }
}

fn bind_raw(expr: &Expr, layout: &Layout) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column { table, name } => BoundExpr::Column(layout.resolve(table.as_deref(), name)?),
        Expr::Func { name, args } => BoundExpr::Func {
            name: name.clone(),
            args: args.iter().map(|a| bind_raw(a, layout)).collect::<Result<_>>()?,
        },
        Expr::Star => return Err(SqlError::Type("'*' is only valid inside COUNT(*)".into())),
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(bind_raw(left, layout)?),
            right: Box::new(bind_raw(right, layout)?),
        },
        Expr::Not(e) => BoundExpr::Not(Box::new(bind_raw(e, layout)?)),
        Expr::Neg(e) => BoundExpr::Neg(Box::new(bind_raw(e, layout)?)),
        Expr::Between { expr, lo, hi } => BoundExpr::Between {
            expr: Box::new(bind_raw(expr, layout)?),
            lo: Box::new(bind_raw(lo, layout)?),
            hi: Box::new(bind_raw(hi, layout)?),
        },
        Expr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(bind_raw(expr, layout)?), negated: *negated }
        }
    })
}

/// Aliases referenced by an (unbound) expression, resolved through the
/// layout for unqualified names.
fn referenced_tables(expr: &Expr, layout: &Layout, out: &mut Vec<usize>) -> Result<()> {
    match expr {
        Expr::Column { table, name } => {
            let idx = layout.resolve(table.as_deref(), name)?;
            let tbl = layout
                .tables
                .iter()
                .position(|t| layout.table_range_of(t).contains(&idx))
                .expect("offset always inside some table");
            if !out.contains(&tbl) {
                out.push(tbl);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                referenced_tables(a, layout, out)?;
            }
        }
        Expr::Binary { left, right, .. } => {
            referenced_tables(left, layout, out)?;
            referenced_tables(right, layout, out)?;
        }
        Expr::Not(e) | Expr::Neg(e) => referenced_tables(e, layout, out)?,
        Expr::Between { expr, lo, hi } => {
            referenced_tables(expr, layout, out)?;
            referenced_tables(lo, layout, out)?;
            referenced_tables(hi, layout, out)?;
        }
        Expr::IsNull { expr, .. } => referenced_tables(expr, layout, out)?,
        Expr::Literal(_) | Expr::Star => {}
    }
    Ok(())
}

impl Layout {
    fn table_range_of(&self, t: &BoundTable) -> std::ops::Range<usize> {
        let idx =
            self.tables.iter().position(|x| std::ptr::eq(x, t)).expect("table belongs to layout");
        self.table_range(idx)
    }
}

/// The planned form of a `SELECT`: the root node plus output labels.
pub struct PlannedSelect {
    /// Root of the plan tree.
    pub root: PlanNode,
    /// Output column labels.
    pub columns: Vec<String>,
    /// Evaluation mode for expression execution.
    pub mode: FunctionMode,
}

/// Plans a `SELECT` against a catalog.
pub fn plan_select(
    catalog: &dyn CatalogProvider,
    select: &Select,
    opts: &PlanOptions,
) -> Result<PlannedSelect> {
    // Resolve FROM tables and build the flat layout.
    let mut layout = Layout { tables: Vec::new(), columns: Vec::new() };
    for tref in &select.from {
        let provider = catalog.table(&tref.table)?;
        let schema = provider.schema();
        let offset = layout.columns.len();
        let mut geometry_cols = Vec::new();
        for (i, col) in schema.columns().iter().enumerate() {
            if col.ty == DataType::Geometry {
                geometry_cols.push(i);
            }
            layout.columns.push((tref.alias.clone(), col.name.clone()));
        }
        layout.tables.push(BoundTable {
            alias: tref.alias.clone(),
            provider,
            offset,
            geometry_cols,
        });
    }
    if layout
        .tables
        .iter()
        .enumerate()
        .any(|(i, t)| layout.tables[..i].iter().any(|u| u.alias.eq_ignore_ascii_case(&t.alias)))
    {
        return Err(SqlError::Unresolved("duplicate table alias".into()));
    }

    // Classify filters by the tables they touch.
    let mut single: Vec<Vec<&Expr>> = vec![Vec::new(); layout.tables.len()];
    let mut multi: Vec<&Expr> = Vec::new();
    for f in &select.filters {
        let mut refs = Vec::new();
        referenced_tables(f, &layout, &mut refs)?;
        match refs.as_slice() {
            [t] => single[*t].push(f),
            _ => multi.push(f),
        }
    }

    // Access path per table.
    let mut accesses: Vec<PlanNode> = Vec::new();
    for (t_idx, t) in layout.tables.iter().enumerate() {
        accesses.push(choose_access(t_idx, t, &single[t_idx], &layout, opts, select)?);
    }

    // FROM-less query: a single empty tuple feeds the projection.
    if layout.tables.is_empty() {
        let mut root = PlanNode::SingleRow;
        for f in &select.filters {
            root = PlanNode::Filter { input: Box::new(root), predicate: bind(f, &layout)? };
        }
        let (mut root, columns) = plan_projection(root, select, &layout)?;
        if let Some(n) = select.limit {
            root = PlanNode::Limit { input: Box::new(root), n };
        }
        return Ok(PlannedSelect { root, columns, mode: opts.mode });
    }

    // Left-deep join tree. Track which original table each joined plan
    // covers so join predicates can pick the spatial-index path.
    let mut covered: Vec<usize> = vec![0];
    let mut accesses_iter = accesses.into_iter();
    let mut root = accesses_iter.next().expect("FROM has at least one table");
    // Apply table 0's own filters now.
    for f in &single[0] {
        root = PlanNode::Filter { input: Box::new(root), predicate: bind(f, &layout)? };
    }
    let mut applied_multi: Vec<bool> = vec![false; multi.len()];

    for (next_idx, access) in accesses_iter.enumerate() {
        let t_idx = next_idx + 1;
        // Look for a spatial join predicate connecting `covered` ⇄ t_idx.
        let mut spatial_join: Option<(usize, &Expr, &Expr)> = None; // (multi idx, probe side expr, other)
        if opts.use_spatial_index {
            for (mi, f) in multi.iter().enumerate() {
                if applied_multi[mi] {
                    continue;
                }
                if let Some((probe, right_col)) = spatial_join_form(f, &layout, &covered, t_idx)? {
                    spatial_join = Some((mi, probe, right_col));
                    break;
                }
            }
        }

        root = match spatial_join {
            Some((mi, probe_expr, right_geom_expr)) => {
                // The join predicate itself stays as a refinement filter
                // above; only the probe path changes.
                let probe = bind(probe_expr, &layout)?;
                let right_col_offset = match bind(right_geom_expr, &layout)? {
                    BoundExpr::Column(c) => c,
                    _ => unreachable!("spatial_join_form returns a column"),
                };
                let right_table = &layout.tables[t_idx];
                let right_col = right_col_offset - right_table.offset;
                // Detect DWithin to expand the probe envelope.
                let expand = dwithin_distance(multi[mi], &layout)?;
                // The chosen access path for the right table is discarded:
                // the index join subsumes it. Its single-table filters are
                // applied above.
                drop(access);
                PlanNode::SpatialIndexJoin {
                    left: Box::new(root),
                    right: right_table.provider.clone(),
                    right_col,
                    probe,
                    expand,
                }
            }
            None => PlanNode::NestedLoopJoin { left: Box::new(root), right: Box::new(access) },
        };

        // Right table's single-table filters.
        for f in &single[t_idx] {
            root = PlanNode::Filter { input: Box::new(root), predicate: bind(f, &layout)? };
        }
        covered.push(t_idx);
        // Join predicates now fully covered.
        for (mi, f) in multi.iter().enumerate() {
            if applied_multi[mi] {
                continue;
            }
            let mut refs = Vec::new();
            referenced_tables(f, &layout, &mut refs)?;
            if refs.iter().all(|r| covered.contains(r)) {
                root = PlanNode::Filter { input: Box::new(root), predicate: bind(f, &layout)? };
                applied_multi[mi] = true;
            }
        }
    }

    // Any remaining (degenerate single-table-from) multi filters.
    for (mi, f) in multi.iter().enumerate() {
        if !applied_multi[mi] && layout.tables.len() == 1 {
            root = PlanNode::Filter { input: Box::new(root), predicate: bind(f, &layout)? };
        }
    }

    // Sort before projection (keys see the FROM layout), positional keys
    // after projection.
    let mut pre_sort: Vec<(BoundExpr, bool)> = Vec::new();
    let mut positional_sort: Vec<(usize, bool)> = Vec::new();
    for (e, asc) in &select.order_by {
        if let Expr::Literal(Value::Int(n)) = e {
            if *n < 1 {
                return Err(SqlError::Type("ORDER BY position must be ≥ 1".into()));
            }
            positional_sort.push((*n as usize - 1, *asc));
        } else {
            pre_sort.push((bind(e, &layout)?, *asc));
        }
    }
    if !pre_sort.is_empty() {
        // Expression sort keys run before projection/aggregation; with
        // GROUP BY the pre-aggregation ordering would be meaningless, so
        // require positional keys there instead of silently ignoring the
        // requested order.
        if !select.group_by.is_empty() {
            return Err(SqlError::Type(
                "ORDER BY with GROUP BY must use positional references (ORDER BY 1)".into(),
            ));
        }
        root = PlanNode::Sort { input: Box::new(root), keys: pre_sort };
    }

    // Projection / aggregation.
    let (mut root, columns) = plan_projection(root, select, &layout)?;

    if !positional_sort.is_empty() {
        let keys = positional_sort
            .into_iter()
            .map(|(i, asc)| {
                if i >= columns.len() {
                    return Err(SqlError::Type(format!(
                        "ORDER BY position {} exceeds projection width",
                        i + 1
                    )));
                }
                Ok((BoundExpr::Column(i), asc))
            })
            .collect::<Result<Vec<_>>>()?;
        root = PlanNode::Sort { input: Box::new(root), keys };
    }

    if let Some(n) = select.limit {
        root = PlanNode::Limit { input: Box::new(root), n };
    }

    Ok(PlannedSelect { root, columns, mode: opts.mode })
}

/// Chooses the base access path for one table given its single-table
/// filters.
fn choose_access(
    t_idx: usize,
    t: &BoundTable,
    filters: &[&Expr],
    layout: &Layout,
    opts: &PlanOptions,
    select: &Select,
) -> Result<PlanNode> {
    // k-NN path: single table, ORDER BY ST_Distance(geom, const) LIMIT k,
    // no other filters (refinement slack handles minor post-filtering).
    if layout.tables.len() == 1 && select.order_by.len() == 1 && filters.is_empty() {
        if let (Some(k), (Expr::Func { name, args }, true)) = (select.limit, &select.order_by[0]) {
            if name.eq_ignore_ascii_case("ST_Distance") && args.len() == 2 {
                for (col_side, const_side) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                    if let Some(col) = table_geometry_column(col_side, t_idx, t, layout)? {
                        let c = bind(const_side, layout);
                        if let Ok(c) = c {
                            if c.is_constant() && opts.use_spatial_index {
                                // Fetch extra candidates: the index ranks by
                                // envelope distance, the final sort by exact
                                // distance.
                                let slack = (k * 3).max(k + 16);
                                return Ok(PlanNode::KnnScan {
                                    table: t.provider.clone(),
                                    col,
                                    query: c,
                                    k: slack,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    if opts.use_spatial_index {
        for f in filters {
            if let Expr::Func { name, args } = f {
                if is_indexable_predicate(name) && args.len() >= 2 {
                    for (col_side, const_side) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                        if let Some(col) = table_geometry_column(col_side, t_idx, t, layout)? {
                            let bound_const = bind(const_side, layout);
                            if let Ok(c) = bound_const {
                                if c.is_constant() {
                                    let expand = if name.eq_ignore_ascii_case("ST_DWithin") {
                                        let d = bind(&args[2], layout)?;
                                        if !d.is_constant() {
                                            continue;
                                        }
                                        Some(d)
                                    } else {
                                        None
                                    };
                                    return Ok(PlanNode::SpatialIndexScan {
                                        table: t.provider.clone(),
                                        col,
                                        query: c,
                                        expand,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Ordered-index equality.
    for f in filters {
        if let Expr::Binary { op: BinOp::Eq, left, right } = f {
            for (col_side, const_side) in [(left, right), (right, left)] {
                if let Expr::Column { table, name } = col_side.as_ref() {
                    let idx = layout.resolve(table.as_deref(), name)?;
                    if layout.table_range(t_idx).contains(&idx) {
                        let key = bind(const_side, layout)?;
                        if key.is_constant() {
                            return Ok(PlanNode::OrderedIndexScan {
                                table: t.provider.clone(),
                                col: idx - t.offset,
                                key,
                            });
                        }
                    }
                }
            }
        }
    }

    Ok(PlanNode::Scan { table: t.provider.clone() })
}

/// If `expr` is a column of table `t_idx`'s geometry, returns its
/// table-local column index.
fn table_geometry_column(
    expr: &Expr,
    t_idx: usize,
    t: &BoundTable,
    layout: &Layout,
) -> Result<Option<usize>> {
    if let Expr::Column { table, name } = expr {
        // Unresolvable names are simply "not this table's column".
        if let Ok(idx) = layout.resolve(table.as_deref(), name) {
            if layout.table_range(t_idx).contains(&idx) {
                let local = idx - t.offset;
                if t.geometry_cols.contains(&local) {
                    return Ok(Some(local));
                }
            }
        }
    }
    Ok(None)
}

/// Recognizes `pred(expr-over-covered, right.geom)` (either argument
/// order) as an index-join opportunity. Returns the probe expression and
/// the right geometry column expression.
fn spatial_join_form<'a>(
    f: &'a Expr,
    layout: &Layout,
    covered: &[usize],
    right_idx: usize,
) -> Result<Option<(&'a Expr, &'a Expr)>> {
    let Expr::Func { name, args } = f else {
        return Ok(None);
    };
    if !is_indexable_predicate(name) || args.len() < 2 {
        return Ok(None);
    }
    let right = &layout.tables[right_idx];
    for (a, b) in [(&args[0], &args[1]), (&args[1], &args[0])] {
        if table_geometry_column(b, right_idx, right, layout)?.is_some() {
            // The other side must reference only covered tables.
            let mut refs = Vec::new();
            referenced_tables(a, layout, &mut refs)?;
            if !refs.is_empty() && refs.iter().all(|r| covered.contains(r)) {
                return Ok(Some((a, b)));
            }
        }
    }
    Ok(None)
}

/// Extracts the constant distance of an `ST_DWithin` join predicate.
fn dwithin_distance(f: &Expr, layout: &Layout) -> Result<Option<BoundExpr>> {
    if let Expr::Func { name, args } = f {
        if name.eq_ignore_ascii_case("ST_DWithin") && args.len() == 3 {
            let d = bind(&args[2], layout)?;
            if d.is_constant() {
                return Ok(Some(d));
            }
        }
    }
    Ok(None)
}

/// Builds the projection or aggregation stage.
fn plan_projection(
    input: PlanNode,
    select: &Select,
    layout: &Layout,
) -> Result<(PlanNode, Vec<String>)> {
    let is_agg = |e: &Expr| {
        matches!(e, Expr::Func { name, .. }
            if ["COUNT", "SUM", "AVG", "MIN", "MAX"]
                .contains(&name.to_ascii_uppercase().as_str()))
    };
    let any_agg = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => is_agg(expr),
        SelectItem::Wildcard => false,
    });

    if any_agg || !select.group_by.is_empty() {
        let group_by: Vec<BoundExpr> =
            select.group_by.iter().map(|e| bind(e, layout)).collect::<Result<_>>()?;
        let mut outputs: Vec<(AggOutput, String)> = Vec::new();
        for item in &select.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(SqlError::Type("cannot mix '*' with aggregates".into()));
            };
            if let Expr::Func { name, args } = expr {
                let upper = name.to_ascii_uppercase();
                if ["COUNT", "SUM", "AVG", "MIN", "MAX"].contains(&upper.as_str()) {
                    let label = alias.clone().unwrap_or_else(|| upper.to_lowercase());
                    let agg = match (upper.as_str(), args.as_slice()) {
                        ("COUNT", [Expr::Star]) => AggExpr::CountStar,
                        ("COUNT", [a]) => AggExpr::Count(bind(a, layout)?),
                        ("SUM", [a]) => AggExpr::Sum(bind(a, layout)?),
                        ("AVG", [a]) => AggExpr::Avg(bind(a, layout)?),
                        ("MIN", [a]) => AggExpr::Min(bind(a, layout)?),
                        ("MAX", [a]) => AggExpr::Max(bind(a, layout)?),
                        _ => {
                            return Err(SqlError::Type(format!(
                                "malformed aggregate {name}({} args)",
                                args.len()
                            )))
                        }
                    };
                    outputs.push((AggOutput::Agg(agg), label));
                    continue;
                }
            }
            // Non-aggregate item: must match a GROUP BY expression.
            let pos = select.group_by.iter().position(|g| g == expr).ok_or_else(|| {
                SqlError::Type("non-aggregate select expression must appear in GROUP BY".into())
            })?;
            let label = alias.clone().unwrap_or_else(|| default_label(expr));
            outputs.push((AggOutput::Group(pos), label));
        }
        let columns = outputs.iter().map(|(_, l)| l.clone()).collect();
        return Ok((PlanNode::Aggregate { input: Box::new(input), group_by, outputs }, columns));
    }

    // Plain projection.
    let mut exprs: Vec<(BoundExpr, String)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (i, (alias, col)) in layout.columns.iter().enumerate() {
                    let label = if layout.tables.len() > 1 {
                        format!("{alias}.{col}")
                    } else {
                        col.clone()
                    };
                    exprs.push((BoundExpr::Column(i), label));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let label = alias.clone().unwrap_or_else(|| default_label(expr));
                exprs.push((bind(expr, layout)?, label));
            }
        }
    }
    let columns = exprs.iter().map(|(_, l)| l.clone()).collect();
    Ok((PlanNode::Project { input: Box::new(input), exprs }, columns))
}

fn default_label(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.to_lowercase(),
        _ => "expr".to_string(),
    }
}

impl PlanNode {
    /// Renders the plan as an indented tree, one operator per line — the
    /// `EXPLAIN` output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(0, &mut out);
        out
    }

    fn describe_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            PlanNode::SingleRow => {
                out.push_str("SingleRow\n");
            }
            PlanNode::Scan { table } => {
                let _ = writeln!(out, "SeqScan rows={}", table.row_ids().len());
            }
            PlanNode::SpatialIndexScan { table, col, expand, .. } => {
                let _ = writeln!(
                    out,
                    "SpatialIndexScan col={col} rows={}{}",
                    table.row_ids().len(),
                    if expand.is_some() { " expand=dwithin" } else { "" }
                );
            }
            PlanNode::OrderedIndexScan { col, .. } => {
                let _ = writeln!(out, "OrderedIndexScan col={col}");
            }
            PlanNode::KnnScan { col, k, .. } => {
                let _ = writeln!(out, "KnnScan col={col} k={k}");
            }
            PlanNode::Filter { input, .. } => {
                out.push_str("Filter\n");
                input.describe_into(depth + 1, out);
            }
            PlanNode::NestedLoopJoin { left, right } => {
                out.push_str("NestedLoopJoin\n");
                left.describe_into(depth + 1, out);
                right.describe_into(depth + 1, out);
            }
            PlanNode::SpatialIndexJoin { left, right_col, expand, .. } => {
                let _ = writeln!(
                    out,
                    "SpatialIndexJoin right_col={right_col}{}",
                    if expand.is_some() { " expand=dwithin" } else { "" }
                );
                left.describe_into(depth + 1, out);
            }
            PlanNode::Project { input, exprs } => {
                let _ = writeln!(out, "Project cols={}", exprs.len());
                input.describe_into(depth + 1, out);
            }
            PlanNode::Aggregate { input, group_by, outputs } => {
                let _ = writeln!(out, "Aggregate groups={} cols={}", group_by.len(), outputs.len());
                input.describe_into(depth + 1, out);
            }
            PlanNode::Sort { input, keys } => {
                let _ = writeln!(out, "Sort keys={}", keys.len());
                input.describe_into(depth + 1, out);
            }
            PlanNode::Limit { input, n } => {
                let _ = writeln!(out, "Limit n={n}");
                input.describe_into(depth + 1, out);
            }
        }
    }

    /// Appends every table provider the plan reads (leaves and probed
    /// join sides) to `out`, duplicates included. The executor uses this
    /// to pin each distinct provider to the statement snapshot.
    pub fn collect_providers<'a>(&'a self, out: &mut Vec<&'a Arc<dyn TableProvider>>) {
        match self {
            PlanNode::SingleRow => {}
            PlanNode::Scan { table }
            | PlanNode::SpatialIndexScan { table, .. }
            | PlanNode::OrderedIndexScan { table, .. }
            | PlanNode::KnnScan { table, .. } => out.push(table),
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => input.collect_providers(out),
            PlanNode::NestedLoopJoin { left, right } => {
                left.collect_providers(out);
                right.collect_providers(out);
            }
            PlanNode::SpatialIndexJoin { left, right, .. } => {
                left.collect_providers(out);
                out.push(right);
            }
        }
    }
}

/// Binds an expression against a bare `(alias, column)` list, for callers
/// outside the `SELECT` planner (e.g. `DELETE` filter evaluation).
pub fn bind_columns(columns: Vec<(String, String)>, expr: &Expr) -> Result<BoundExpr> {
    let layout = Layout { tables: Vec::new(), columns };
    bind(expr, &layout)
}
