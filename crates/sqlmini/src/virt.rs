//! Materialized read-only virtual tables.
//!
//! A [`VirtualTable`] adapts a vector of in-memory rows to the
//! [`TableProvider`](crate::provider::TableProvider) trait, which is all
//! the planner and executor ever see — so a virtual table flows through
//! the *normal* SELECT pipeline (WHERE, ORDER BY, LIMIT, aggregates,
//! even `EXPLAIN ANALYZE`) with zero special cases. The engine uses it
//! for the `jp_*` system catalog: each introspection query materializes
//! the relevant observability state into one of these and hands it to
//! the planner like any base table.
//!
//! Virtual tables have no indexes (every access path returns `None`, so
//! plans degrade to a scan — introspection tables are small) and no
//! snapshot support (the default `pin_snapshot` of `None` makes the
//! executor read them live, which is exactly right for data that was
//! materialized at statement start).

use crate::provider::TableProvider;
use crate::{Result, SqlError};
use jackpine_geom::{Coord, Envelope};
use jackpine_storage::{Row, RowId, Schema, Value};
use std::sync::Arc;

/// A read-only table materialized from in-memory rows.
#[derive(Debug)]
pub struct VirtualTable {
    schema: Arc<Schema>,
    rows: Vec<Arc<Row>>,
}

impl VirtualTable {
    /// Builds a virtual table, type-checking every row against the
    /// schema so downstream expression evaluation can trust the column
    /// types just as it does for heap tables.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<VirtualTable> {
        for row in &rows {
            schema.check_row(row)?;
        }
        Ok(VirtualTable {
            schema: Arc::new(schema),
            rows: rows.into_iter().map(Arc::new).collect(),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Synthetic id for row `i`: the index split across the page/slot
    /// fields (slot is only 16 bits wide).
    fn row_id(i: usize) -> RowId {
        RowId { page: (i >> 16) as u32, slot: (i & 0xffff) as u16 }
    }

    fn index_of(id: RowId) -> usize {
        ((id.page as usize) << 16) | id.slot as usize
    }
}

impl TableProvider for VirtualTable {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn row_ids(&self) -> Vec<RowId> {
        (0..self.rows.len()).map(Self::row_id).collect()
    }

    fn fetch(&self, id: RowId) -> Result<Arc<Row>> {
        self.rows
            .get(Self::index_of(id))
            .cloned()
            .ok_or_else(|| SqlError::Storage(format!("virtual row {id:?} out of range")))
    }

    fn spatial_candidates(&self, _col: usize, _env: &Envelope) -> Option<Vec<RowId>> {
        None
    }

    fn ordered_candidates(&self, _col: usize, _key: &Value) -> Option<Vec<RowId>> {
        None
    }

    fn nearest(&self, _col: usize, _query: Coord, _k: usize) -> Option<Vec<RowId>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_storage::{ColumnDef, DataType};

    fn table(n: usize) -> VirtualTable {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
        ])
        .unwrap();
        let rows =
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Text(format!("r{i}"))]).collect();
        VirtualTable::new(schema, rows).unwrap()
    }

    #[test]
    fn round_trips_rows_through_synthetic_ids() {
        let t = table(5);
        assert_eq!(t.len(), 5);
        let ids = t.row_ids();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            let row = t.fetch(*id).unwrap();
            assert_eq!(row[0], Value::Int(i as i64));
        }
        assert!(t.fetch(RowId { page: 9, slot: 9 }).is_err());
    }

    #[test]
    fn ids_split_across_page_and_slot_beyond_u16() {
        // Index 70000 does not fit in the 16-bit slot field alone.
        let i = 70_000usize;
        let id = VirtualTable::row_id(i);
        assert_eq!(id.page, 1);
        assert_eq!(id.slot, (70_000 - 65_536) as u16);
        assert_eq!(VirtualTable::index_of(id), i);
    }

    #[test]
    fn rows_are_type_checked() {
        let schema = Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap();
        assert!(VirtualTable::new(schema, vec![vec![Value::Text("no".into())]]).is_err());
    }

    #[test]
    fn no_index_paths() {
        let t = table(1);
        assert!(t.spatial_candidates(0, &Envelope::new(0.0, 0.0, 1.0, 1.0)).is_none());
        assert!(t.ordered_candidates(0, &Value::Int(0)).is_none());
        assert!(t.nearest(0, Coord { x: 0.0, y: 0.0 }, 1).is_none());
        assert!(!t.is_empty());
    }
}
