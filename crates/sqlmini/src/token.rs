//! SQL tokenizer.

use crate::{Result, SqlError};

/// A lexical token with its byte position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the statement text.
    pub position: usize,
}

/// Token kinds. Keywords are delivered as `Ident` and matched
/// case-insensitively by the parser, as in most SQL lexers.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integer or decimal).
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenizes a statement.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push(&mut out, TokenKind::LParen, start, &mut i),
            b')' => push(&mut out, TokenKind::RParen, start, &mut i),
            b',' => push(&mut out, TokenKind::Comma, start, &mut i),
            b'.' if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                push(&mut out, TokenKind::Dot, start, &mut i)
            }
            b'*' => push(&mut out, TokenKind::Star, start, &mut i),
            b'+' => push(&mut out, TokenKind::Plus, start, &mut i),
            b'-' => push(&mut out, TokenKind::Minus, start, &mut i),
            b'/' => push(&mut out, TokenKind::Slash, start, &mut i),
            b'=' => push(&mut out, TokenKind::Eq, start, &mut i),
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Neq, position: start });
                i += 2;
            }
            b'<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        out.push(Token { kind: TokenKind::Le, position: start });
                        i += 2;
                    }
                    Some(b'>') => {
                        out.push(Token { kind: TokenKind::Neq, position: start });
                        i += 2;
                    }
                    _ => push(&mut out, TokenKind::Lt, start, &mut i),
                };
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ge, position: start });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt, start, &mut i);
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token { kind: TokenKind::StringLit(s), position: start });
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                let mut saw_dot = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || (bytes[j] == b'.' && !saw_dot))
                {
                    saw_dot |= bytes[j] == b'.';
                    j += 1;
                }
                // Exponent.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        while k < bytes.len() && bytes[k].is_ascii_digit() {
                            k += 1;
                        }
                        j = k;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Number(input[i..j].to_string()),
                    position: start,
                });
                i = j;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(input[i..j].to_string()),
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    position: start,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, position: input.len() });
    Ok(out)
}

fn push(out: &mut Vec<Token>, kind: TokenKind, position: usize, i: &mut usize) {
    out.push(Token { kind, position });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let k = kinds("SELECT a.id FROM t a WHERE x >= 1.5");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("id".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Ge,
                TokenKind::Number("1.5".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let k = kinds("name = 'O''Hara St'");
        assert!(matches!(&k[2], TokenKind::StringLit(s) if s == "O'Hara St"));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        let k = kinds("a <> b != c <= d >= e < f > g");
        assert_eq!(k.iter().filter(|t| matches!(t, TokenKind::Neq)).count(), 2);
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n + 2");
        assert_eq!(k.len(), 5); // SELECT, 1, +, 2, EOF
    }

    #[test]
    fn numbers() {
        let k = kinds("1 2.5 1e3 2.5E-2 .75");
        let nums: Vec<&str> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Number(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1", "2.5", "1e3", "2.5E-2", ".75"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
    }
}
