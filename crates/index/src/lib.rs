//! # jackpine-index
//!
//! Spatial and attribute access methods for the Jackpine engines:
//!
//! * [`RTree`] — an R\*-tree (forced reinsert, margin-driven split, STR
//!   bulk load, window and k-nearest-neighbour search). This is the
//!   PostGIS-GiST analogue used by the `ExactRtree` and `MbrOnly` engine
//!   profiles.
//! * [`GridIndex`] — a fixed multi-cell grid (tessellation) index, the
//!   commercial-DBMS analogue used by the `ExactGrid` profile.
//! * [`OrderedIndex`] — a sorted attribute index used by the geocoding
//!   macro scenario for street-name lookups.
//!
//! All spatial indexes are keyed by [`jackpine_geom::Envelope`] and store
//! a caller-chosen payload (typically a row id).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod ordered;
mod rtree;

pub use grid::GridIndex;
pub use ordered::OrderedIndex;
pub use rtree::{LeafPager, LeafPayload, RTree, RTreeConfig};

/// Statistics shared by the spatial indexes, for the benchmark's
/// instrumentation (index structure vs. probe cost).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Tree height (R-tree) or 1 (grid).
    pub height: usize,
    /// Total number of stored entries.
    pub entries: usize,
    /// Internal nodes (R-tree) or occupied cells (grid).
    pub nodes: usize,
}

/// Cost of a single index probe, reported by the `*_probe` query
/// variants for the observability layer. Both fields are deterministic
/// functions of the index contents and the query, never of scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Tree nodes (R-tree) or grid cells inspected during the probe.
    pub nodes_visited: u64,
    /// Candidate entries emitted to the caller.
    pub candidates: u64,
}

impl ProbeStats {
    /// Component-wise sum, for aggregating probes.
    pub fn merge(self, other: ProbeStats) -> ProbeStats {
        ProbeStats {
            nodes_visited: self.nodes_visited + other.nodes_visited,
            candidates: self.candidates + other.candidates,
        }
    }
}
