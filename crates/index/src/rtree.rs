//! R\*-tree: the R-tree variant of Beckmann et al. with margin-driven
//! splits and forced reinsertion, plus Sort-Tile-Recursive bulk loading.
//!
//! # Demand-loaded leaves
//!
//! A built tree can spill its leaf entries into a [`LeafPager`]
//! (backed by the engine's buffer pool): [`RTree::spill_leaves`]
//! serializes each leaf as one blob and empties the in-tree vector,
//! keeping only the internal levels resident — roughly `1/M` of the
//! index. Queries load spilled leaves on demand through a decoded-leaf
//! cache (an `Arc` per leaf, so warm probes cost one clone); the
//! benchmark's cold switch drops that cache with
//! [`RTree::clear_leaf_cache`], forcing re-reads through the pager.
//! Mutations ([`RTree::insert`], [`RTree::remove`]) first fault every
//! leaf back in ([`RTree::unspill`]) so the R\*-tree invariants work on
//! resident vectors; the engine re-spills on its next rebuild or pool
//! reconfiguration.

use jackpine_geom::{Coord, Envelope};
use jackpine_storage::sync::Mutex;
use jackpine_storage::RowId;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Backing store for spilled R-tree leaves — implemented by the engine
/// on top of its buffer pool, one page per leaf.
pub trait LeafPager: Send + Sync + std::fmt::Debug {
    /// Stores the serialized image of leaf `leaf`.
    fn write(&self, leaf: u64, bytes: &[u8]);
    /// Loads the serialized image of leaf `leaf`, if present.
    fn read(&self, leaf: u64) -> Option<Vec<u8>>;
}

/// Payloads that can round-trip through a spilled leaf.
pub trait LeafPayload: Sized {
    /// Appends the serialized payload to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one payload starting at `*pos`, advancing it.
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self>;
}

impl LeafPayload for RowId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
    }

    fn decode(bytes: &[u8], pos: &mut usize) -> Option<RowId> {
        let page = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
        let slot = u16::from_le_bytes(bytes.get(*pos + 4..*pos + 6)?.try_into().ok()?);
        *pos += 6;
        Some(RowId { page, slot })
    }
}

impl LeafPayload for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8], pos: &mut usize) -> Option<u64> {
        let v = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
        *pos += 8;
        Some(v)
    }
}

impl LeafPayload for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(bytes: &[u8], pos: &mut usize) -> Option<usize> {
        u64::decode(bytes, pos).map(|v| v as usize)
    }
}

/// Serializes a leaf's entries: `count u32 | (envelope 4×f64 | payload)*`.
/// Envelope fields are stored as raw little-endian bits so `EMPTY`
/// (inverted infinities) and NaN coordinates round-trip exactly.
fn encode_leaf<T: LeafPayload>(entries: &[(Envelope, T)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + entries.len() * 40);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (env, value) in entries {
        for f in [env.min_x, env.min_y, env.max_x, env.max_y] {
            out.extend_from_slice(&f.to_le_bytes());
        }
        value.encode(&mut out);
    }
    out
}

/// Inverse of [`encode_leaf`].
fn decode_leaf<T: LeafPayload>(bytes: &[u8]) -> Option<Vec<(Envelope, T)>> {
    let count = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count.min(bytes.len() / 40 + 1));
    for _ in 0..count {
        let mut f = [0.0f64; 4];
        for slot in &mut f {
            *slot = f64::from_le_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
            pos += 8;
        }
        // Direct construction: Envelope::new normalizes bounds, which
        // would corrupt the EMPTY sentinel.
        let env = Envelope { min_x: f[0], min_y: f[1], max_x: f[2], max_y: f[3] };
        let value = T::decode(bytes, &mut pos)?;
        out.push((env, value));
    }
    Some(out)
}

/// Tuning parameters for an [`RTree`].
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries per node before a split (R\*-tree `M`).
    pub max_entries: usize,
    /// Minimum entries per node (R\*-tree `m`); must be ≤ `max_entries / 2`.
    pub min_entries: usize,
    /// Entries removed and reinserted on first overflow (R\*-tree `p`).
    pub reinsert_count: usize,
    /// Disable forced reinsertion entirely (ablation switch; falls back to
    /// split-on-overflow like a classic quadratic R-tree).
    pub forced_reinsert: bool,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        // M = 16, m = 40 % M, p = 30 % M — the classic R*-tree settings.
        RTreeConfig { max_entries: 16, min_entries: 6, reinsert_count: 5, forced_reinsert: true }
    }
}

#[derive(Clone, Debug)]
enum Node<T> {
    Internal { entries: Vec<(Envelope, usize)> },
    Leaf { entries: Vec<(Envelope, T)> },
}

/// One packer thread's share of bulk-load work: `(slice index, slice)`
/// pairs, each slice an exclusive borrow of a run of input items.
type SliceBatch<'a, T> = Vec<(usize, &'a mut [(Envelope, T)])>;

impl<T> Node<T> {
    fn len(&self) -> usize {
        match self {
            Node::Internal { entries } => entries.len(),
            Node::Leaf { entries } => entries.len(),
        }
    }
    fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        match self {
            Node::Internal { entries } => {
                for (env, _) in entries {
                    e.expand_to_include(env);
                }
            }
            Node::Leaf { entries } => {
                for (env, _) in entries {
                    e.expand_to_include(env);
                }
            }
        }
        e
    }
}

/// Read access to one leaf's entries: a borrow when resident, a shared
/// decoded image when the leaf is spilled.
enum LeafRef<'a, T> {
    Resident(&'a [(Envelope, T)]),
    Loaded(Arc<Vec<(Envelope, T)>>),
}

impl<T> std::ops::Deref for LeafRef<'_, T> {
    type Target = [(Envelope, T)];
    fn deref(&self) -> &Self::Target {
        match self {
            LeafRef::Resident(entries) => entries,
            LeafRef::Loaded(entries) => entries.as_slice(),
        }
    }
}

/// An R\*-tree mapping envelopes to payloads.
///
/// Payloads are `Clone` (row ids in practice). The tree supports one-at-a-
/// time insertion with forced reinsert, deletion with tree condensation,
/// STR bulk loading, window queries and best-first k-nearest-neighbour
/// search. Leaves can spill to a [`LeafPager`] and load on demand; see
/// the module docs.
pub struct RTree<T: Clone> {
    nodes: Vec<Node<T>>,
    root: usize,
    height: usize, // leaf level = 0; root is at `height`
    len: usize,
    config: RTreeConfig,
    /// Backing store for spilled leaves, when attached.
    pager: Option<Arc<dyn LeafPager>>,
    /// Node ids whose leaf entries currently live in the pager.
    spilled: HashSet<usize>,
    /// Decoder captured (monomorphized) at spill time, so query paths
    /// need no `T: LeafPayload` bound.
    decoder: Option<fn(&[u8]) -> Option<Vec<(Envelope, T)>>>,
    /// Decoded-leaf cache: warm probes of a spilled leaf cost one
    /// `Arc` clone; the benchmark's cold switch clears it.
    leaf_cache: Mutex<HashMap<usize, Arc<Vec<(Envelope, T)>>>>,
}

impl<T: Clone> Clone for RTree<T> {
    fn clone(&self) -> Self {
        RTree {
            nodes: self.nodes.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            config: self.config,
            pager: self.pager.clone(),
            spilled: self.spilled.clone(),
            decoder: self.decoder,
            leaf_cache: Mutex::new(self.leaf_cache.lock().clone()),
        }
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for RTree<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("len", &self.len)
            .field("height", &self.height)
            .field("nodes", &self.nodes.len())
            .field("spilled", &self.spilled.len())
            .finish_non_exhaustive()
    }
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        RTree::new(RTreeConfig::default())
    }
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree with the given configuration.
    pub fn new(config: RTreeConfig) -> RTree<T> {
        assert!(config.max_entries >= 4, "max_entries must be at least 4");
        assert!(
            config.min_entries >= 1 && config.min_entries <= config.max_entries / 2,
            "min_entries must be in [1, max_entries/2]"
        );
        RTree {
            nodes: vec![Node::Leaf { entries: Vec::new() }],
            root: 0,
            height: 0,
            len: 0,
            config,
            pager: None,
            spilled: HashSet::new(),
            decoder: None,
            leaf_cache: Mutex::new(HashMap::new()),
        }
    }

    // ------------------------------------------------------------------
    // Leaf spill / demand loading
    // ------------------------------------------------------------------

    /// Attaches the pager spilled leaves are written to and read from.
    pub fn attach_pager(&mut self, pager: Arc<dyn LeafPager>) {
        self.pager = Some(pager);
    }

    /// Whether a pager is attached.
    pub fn has_pager(&self) -> bool {
        self.pager.is_some()
    }

    /// Number of leaves currently spilled (diagnostics).
    pub fn spilled_leaves(&self) -> usize {
        self.spilled.len()
    }

    /// Serializes every leaf into the attached pager and drops the
    /// resident entry vectors; inner nodes stay in memory. A no-op
    /// without a pager, and for trees of height 0 (the root itself is
    /// the only leaf — not worth paging).
    pub fn spill_leaves(&mut self)
    where
        T: LeafPayload,
    {
        let Some(pager) = self.pager.clone() else { return };
        if self.height == 0 {
            return;
        }
        self.decoder = Some(decode_leaf::<T>);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if let Node::Leaf { entries } = node {
                if entries.is_empty() {
                    continue;
                }
                let taken = std::mem::take(entries);
                pager.write(id as u64, &encode_leaf(&taken));
                self.spilled.insert(id);
            }
        }
        self.leaf_cache.lock().clear();
    }

    /// Faults every spilled leaf back into the tree (mutations need
    /// resident entry vectors). The pager stays attached so the engine
    /// can re-spill later.
    pub fn unspill(&mut self) {
        if self.spilled.is_empty() {
            return;
        }
        let mut ids: Vec<usize> = self.spilled.iter().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let loaded = self.load_leaf(id);
            if let Node::Leaf { entries } = &mut self.nodes[id] {
                *entries = loaded.as_ref().clone();
            }
        }
        self.spilled.clear();
        self.leaf_cache.lock().clear();
    }

    /// Drops the decoded-leaf cache — the cold-run switch for spilled
    /// leaves: the next probe of each leaf re-reads through the pager.
    pub fn clear_leaf_cache(&self) {
        self.leaf_cache.lock().clear();
    }

    /// Loads a spilled leaf's entries through the decoded-leaf cache.
    /// Panics on a missing or undecodable image: the pager is this
    /// process's own buffer pool, so that is an invariant violation,
    /// not user-visible corruption.
    fn load_leaf(&self, node_id: usize) -> Arc<Vec<(Envelope, T)>> {
        if let Some(hit) = self.leaf_cache.lock().get(&node_id) {
            return hit.clone();
        }
        let pager = self.pager.as_ref().expect("spilled leaf without a pager");
        let decoder = self.decoder.expect("spilled leaf without a decoder");
        let bytes =
            pager.read(node_id as u64).unwrap_or_else(|| panic!("leaf {node_id} lost by pager"));
        let entries =
            Arc::new(decoder(&bytes).unwrap_or_else(|| panic!("leaf {node_id} undecodable")));
        self.leaf_cache.lock().insert(node_id, entries.clone());
        entries
    }

    /// Read access to a leaf's entries, resident or spilled.
    fn leaf_entries(&self, node_id: usize) -> LeafRef<'_, T> {
        if self.spilled.contains(&node_id) {
            return LeafRef::Loaded(self.load_leaf(node_id));
        }
        match &self.nodes[node_id] {
            Node::Leaf { entries } => LeafRef::Resident(entries),
            Node::Internal { .. } => unreachable!("leaf_entries on internal node"),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Structure statistics.
    pub fn stats(&self) -> crate::IndexStats {
        crate::IndexStats { height: self.height + 1, entries: self.len, nodes: self.nodes.len() }
    }

    /// Bounding envelope of the whole tree.
    pub fn envelope(&self) -> Envelope {
        self.nodes[self.root].envelope()
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts an entry. Faults any spilled leaves back in first:
    /// structural mutation needs resident entry vectors.
    pub fn insert(&mut self, env: Envelope, value: T) {
        self.unspill();
        let mut reinserted = vec![false; self.height + 1];
        self.insert_entry(env, Entry::Leaf(value), 0, &mut reinserted);
        self.len += 1;
    }

    fn insert_entry(
        &mut self,
        env: Envelope,
        entry: Entry<T>,
        level: usize,
        reinserted: &mut Vec<bool>,
    ) {
        let path = self.choose_path(env, level);
        let node_id = *path.last().expect("path never empty");
        match (&mut self.nodes[node_id], entry) {
            (Node::Leaf { entries }, Entry::Leaf(v)) => entries.push((env, v)),
            (Node::Internal { entries }, Entry::Node(child)) => entries.push((env, child)),
            _ => unreachable!("level bookkeeping placed entry at wrong node kind"),
        }
        self.refresh_upward(&path);
        self.overflow_chain(path, level, reinserted);
    }

    /// Root-to-target path choosing, at each step, the child needing least
    /// enlargement (least overlap increase directly above the leaves, per
    /// the R\* heuristic).
    fn choose_path(&self, env: Envelope, target_level: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.height + 1);
        let mut node_id = self.root;
        let mut level = self.height;
        path.push(node_id);
        while level > target_level {
            let Node::Internal { entries } = &self.nodes[node_id] else {
                unreachable!("internal levels hold internal nodes");
            };
            let idx = if level == 1 {
                self.pick_min_overlap(entries, env)
            } else {
                pick_min_enlargement(entries, env)
            };
            node_id = entries[idx].1;
            level -= 1;
            path.push(node_id);
        }
        path
    }

    fn pick_min_overlap(&self, entries: &[(Envelope, usize)], env: Envelope) -> usize {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, (e, _)) in entries.iter().enumerate() {
            let grown = e.union(&env);
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, (o, _)) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                if let Some(x) = e.intersection(o) {
                    overlap_before += x.area();
                }
                if let Some(x) = grown.intersection(o) {
                    overlap_after += x.area();
                }
            }
            let key = (overlap_after - overlap_before, grown.area() - e.area(), e.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Recomputes the parent-entry envelopes along `path`, bottom-up.
    fn refresh_upward(&mut self, path: &[usize]) {
        for i in (1..path.len()).rev() {
            let child = path[i];
            let env = self.nodes[child].envelope();
            if let Node::Internal { entries } = &mut self.nodes[path[i - 1]] {
                if let Some(e) = entries.iter_mut().find(|(_, c)| *c == child) {
                    e.0 = env;
                }
            }
        }
    }

    /// Resolves overflow at the end of `path`, propagating splits upward.
    fn overflow_chain(
        &mut self,
        mut path: Vec<usize>,
        mut level: usize,
        reinserted: &mut Vec<bool>,
    ) {
        loop {
            let node_id = *path.last().expect("path never empty");
            if self.nodes[node_id].len() <= self.config.max_entries {
                return;
            }
            let is_root = node_id == self.root;
            if self.config.forced_reinsert && !is_root && !reinserted[level] {
                reinserted[level] = true;
                self.forced_reinsert(node_id, &path, level, reinserted);
                return;
            }

            // Split the node.
            let min = self.config.min_entries;
            let new_node = match &mut self.nodes[node_id] {
                Node::Leaf { entries } => {
                    let split_at = rstar_split_point(entries, min, |e| e.0);
                    Node::Leaf { entries: entries.split_off(split_at) }
                }
                Node::Internal { entries } => {
                    let split_at = rstar_split_point(entries, min, |e| e.0);
                    Node::Internal { entries: entries.split_off(split_at) }
                }
            };
            let new_env = new_node.envelope();
            let old_env = self.nodes[node_id].envelope();
            let new_id = self.nodes.len();
            self.nodes.push(new_node);

            if is_root {
                let root = Node::Internal { entries: vec![(old_env, node_id), (new_env, new_id)] };
                self.root = self.nodes.len();
                self.nodes.push(root);
                self.height += 1;
                reinserted.push(false);
                return;
            }
            // Fix the parent: refresh this node's entry, add the new one,
            // then continue the overflow check one level up.
            let parent = path[path.len() - 2];
            if let Node::Internal { entries } = &mut self.nodes[parent] {
                if let Some(e) = entries.iter_mut().find(|(_, c)| *c == node_id) {
                    e.0 = old_env;
                }
                entries.push((new_env, new_id));
            }
            path.pop();
            level += 1;
            self.refresh_upward(&path);
        }
    }

    /// Removes the `p` entries farthest from the node's centre and
    /// reinserts them (the R\* improvement over plain R-trees).
    fn forced_reinsert(
        &mut self,
        node_id: usize,
        path: &[usize],
        level: usize,
        reinserted: &mut Vec<bool>,
    ) {
        let center = match self.nodes[node_id].envelope().center() {
            Some(c) => c,
            None => return,
        };
        let p = self.config.reinsert_count.min(self.nodes[node_id].len() / 2).max(1);
        let removed: Vec<(Envelope, Entry<T>)> = match &mut self.nodes[node_id] {
            Node::Leaf { entries } => {
                sort_by_center_distance_leaf(entries, center);
                entries.drain(entries.len() - p..).map(|(e, v)| (e, Entry::Leaf(v))).collect()
            }
            Node::Internal { entries } => {
                sort_by_center_distance_node(entries, center);
                entries.drain(entries.len() - p..).map(|(e, v)| (e, Entry::Node(v))).collect()
            }
        };
        self.refresh_upward(path);
        for (env, entry) in removed {
            self.insert_entry(env, entry, level, reinserted);
        }
    }

    // ------------------------------------------------------------------
    // Bulk load
    // ------------------------------------------------------------------

    /// Builds a tree from scratch with Sort-Tile-Recursive packing.
    pub fn bulk_load(config: RTreeConfig, mut items: Vec<(Envelope, T)>) -> RTree<T> {
        if items.is_empty() {
            return RTree::new(config);
        }
        let cap = config.max_entries;
        let mut tree = RTree {
            nodes: Vec::new(),
            root: 0,
            height: 0,
            len: items.len(),
            config,
            pager: None,
            spilled: HashSet::new(),
            decoder: None,
            leaf_cache: Mutex::new(HashMap::new()),
        };

        // Leaf level: sort by x, tile into vertical slices, sort each slice
        // by y, pack runs of `cap`.
        let n = items.len();
        let leaf_count = n.div_ceil(cap);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count);
        items.sort_by(|a, b| center_x(&a.0).total_cmp(&center_x(&b.0)));

        let mut level_ids: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < n {
            let end = (i + slice_size).min(n);
            let slice = &mut items[i..end];
            slice.sort_by(|a, b| center_y(&a.0).total_cmp(&center_y(&b.0)));
            let mut j = 0;
            while j < slice.len() {
                let chunk_end = (j + cap).min(slice.len());
                let entries: Vec<(Envelope, T)> = slice[j..chunk_end].to_vec();
                level_ids.push(tree.nodes.len());
                tree.nodes.push(Node::Leaf { entries });
                j = chunk_end;
            }
            i = end;
        }

        // Build internal levels the same way until one node remains.
        let mut height = 0;
        while level_ids.len() > 1 {
            height += 1;
            let mut upper: Vec<(Envelope, usize)> =
                level_ids.iter().map(|&id| (tree.nodes[id].envelope(), id)).collect();
            upper.sort_by(|a, b| center_x(&a.0).total_cmp(&center_x(&b.0)));
            let count = upper.len().div_ceil(cap);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per_slice = upper.len().div_ceil(slices);
            let mut next_ids: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < upper.len() {
                let end = (i + per_slice).min(upper.len());
                let slice = &mut upper[i..end];
                slice.sort_by(|a, b| center_y(&a.0).total_cmp(&center_y(&b.0)));
                let mut j = 0;
                while j < slice.len() {
                    let chunk_end = (j + cap).min(slice.len());
                    next_ids.push(tree.nodes.len());
                    tree.nodes.push(Node::Internal { entries: slice[j..chunk_end].to_vec() });
                    j = chunk_end;
                }
                i = end;
            }
            level_ids = next_ids;
        }
        tree.root = level_ids[0];
        tree.height = height;
        tree
    }

    /// [`RTree::bulk_load`] with the sort and leaf-packing phases spread
    /// over `workers` scoped threads.
    ///
    /// Produces a tree with exactly the same structure as the serial STR
    /// path: the x-sort is a stable chunked merge sort and slices are
    /// packed in slice order, so node layout is independent of worker
    /// count. `workers <= 1` (or a small input) falls back to the serial
    /// path directly.
    pub fn bulk_load_parallel(
        config: RTreeConfig,
        items: Vec<(Envelope, T)>,
        workers: usize,
    ) -> RTree<T>
    where
        T: Send,
    {
        /// Below this many items the spawn overhead beats the speedup.
        const PARALLEL_CUTOFF: usize = 8 * 1024;

        let n = items.len();
        let workers = workers.min(n / (PARALLEL_CUTOFF / 2).max(1)).max(1);
        if workers <= 1 || n < PARALLEL_CUTOFF {
            return RTree::bulk_load(config, items);
        }
        let cap = config.max_entries;
        let mut tree = RTree {
            nodes: Vec::new(),
            root: 0,
            height: 0,
            len: n,
            config,
            pager: None,
            spilled: HashSet::new(),
            decoder: None,
            leaf_cache: Mutex::new(HashMap::new()),
        };

        // Phase 1 — stable parallel sort by center x: sort contiguous
        // chunks concurrently, then k-way merge preferring the earliest
        // chunk on ties (the merge of a stable merge sort).
        let chunk_len = n.div_ceil(workers);
        let mut parts: Vec<Vec<(Envelope, T)>> = Vec::with_capacity(workers);
        let mut rest = items;
        while rest.len() > chunk_len {
            let tail = rest.split_off(chunk_len);
            parts.push(rest);
            rest = tail;
        }
        parts.push(rest);
        std::thread::scope(|scope| {
            for part in &mut parts {
                scope.spawn(|| part.sort_by(|a, b| center_x(&a.0).total_cmp(&center_x(&b.0))));
            }
        });
        let mut heads: Vec<_> = parts.into_iter().map(|p| p.into_iter().peekable()).collect();
        let mut items: Vec<(Envelope, T)> = Vec::with_capacity(n);
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (p, head) in heads.iter_mut().enumerate() {
                if let Some((env, _)) = head.peek() {
                    let key = center_x(env);
                    // total_cmp matches the chunk sorts' comparator, so
                    // NaN centers merge exactly where serial sort puts
                    // them; strict Less keeps the earliest chunk on ties.
                    let better = match best {
                        None => true,
                        Some((_, bk)) => key.total_cmp(&bk) == std::cmp::Ordering::Less,
                    };
                    if better {
                        best = Some((p, key));
                    }
                }
            }
            match best {
                Some((p, _)) => items.push(heads[p].next().expect("peeked non-empty")),
                None => break,
            }
        }

        // Phase 2 — tile into vertical slices and pack each slice's
        // leaves concurrently; slices are independent and their leaves
        // are appended in slice order afterwards, keeping ids identical
        // to the serial layout.
        let leaf_count = n.div_ceil(cap);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count);
        let mut assigned: Vec<SliceBatch<'_, T>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, slice) in items.chunks_mut(slice_size).enumerate() {
            assigned[i % workers].push((i, slice));
        }
        let mut packed: Vec<(usize, Vec<Node<T>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assigned
                .into_iter()
                .map(|batch| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, Vec<Node<T>>)> = Vec::new();
                        for (idx, slice) in batch {
                            slice.sort_by(|a, b| center_y(&a.0).total_cmp(&center_y(&b.0)));
                            let leaves: Vec<Node<T>> = slice
                                .chunks(cap)
                                .map(|run| Node::Leaf { entries: run.to_vec() })
                                .collect();
                            out.push((idx, leaves));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("packer panicked")).collect()
        });
        packed.sort_by_key(|(idx, _)| *idx);
        let mut level_ids: Vec<usize> = Vec::new();
        for (_, leaves) in packed {
            for leaf in leaves {
                level_ids.push(tree.nodes.len());
                tree.nodes.push(leaf);
            }
        }

        // Phase 3 — internal levels hold ~1/cap of the entries per level;
        // building them serially is cheap and identical to bulk_load.
        let mut height = 0;
        while level_ids.len() > 1 {
            height += 1;
            let mut upper: Vec<(Envelope, usize)> =
                level_ids.iter().map(|&id| (tree.nodes[id].envelope(), id)).collect();
            upper.sort_by(|a, b| center_x(&a.0).total_cmp(&center_x(&b.0)));
            let count = upper.len().div_ceil(cap);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per_slice = upper.len().div_ceil(slices);
            let mut next_ids: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < upper.len() {
                let end = (i + per_slice).min(upper.len());
                let slice = &mut upper[i..end];
                slice.sort_by(|a, b| center_y(&a.0).total_cmp(&center_y(&b.0)));
                let mut j = 0;
                while j < slice.len() {
                    let chunk_end = (j + cap).min(slice.len());
                    next_ids.push(tree.nodes.len());
                    tree.nodes.push(Node::Internal { entries: slice[j..chunk_end].to_vec() });
                    j = chunk_end;
                }
                i = end;
            }
            level_ids = next_ids;
        }
        tree.root = level_ids[0];
        tree.height = height;
        tree
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes one entry matching `env` exactly for which `pred` returns
    /// true. Returns the removed payload, if any. Underfull nodes are
    /// condensed by reinserting their entries, recursively up the tree.
    /// Faults any spilled leaves back in first.
    pub fn remove(&mut self, env: &Envelope, pred: impl Fn(&T) -> bool) -> Option<T> {
        self.unspill();
        let path = self.find_leaf_path(self.root, env, &pred)?;
        let leaf = *path.last().expect("path never empty");
        let removed = match &mut self.nodes[leaf] {
            Node::Leaf { entries } => {
                let pos = entries.iter().position(|(e, v)| e == env && pred(v))?;
                Some(entries.swap_remove(pos).1)
            }
            Node::Internal { .. } => None,
        }?;
        self.len -= 1;
        self.refresh_upward(&path);
        self.condense(path);
        Some(removed)
    }

    /// Walks `path` bottom-up, dissolving underfull nodes by reinserting
    /// their entries, then shrinks a single-child root.
    fn condense(&mut self, mut path: Vec<usize>) {
        let mut level = 0usize;
        while path.len() > 1 {
            let node_id = path.pop().expect("checked len");
            if self.nodes[node_id].len() >= self.config.min_entries {
                level += 1;
                continue;
            }
            // Detach from parent and reinsert the orphaned entries.
            let parent = *path.last().expect("checked len");
            if let Node::Internal { entries } = &mut self.nodes[parent] {
                if let Some(pos) = entries.iter().position(|&(_, c)| c == node_id) {
                    entries.swap_remove(pos);
                }
            }
            self.refresh_upward(&path);
            let orphans: Vec<(Envelope, Entry<T>)> = match &mut self.nodes[node_id] {
                Node::Leaf { entries } => {
                    std::mem::take(entries).into_iter().map(|(e, v)| (e, Entry::Leaf(v))).collect()
                }
                Node::Internal { entries } => {
                    std::mem::take(entries).into_iter().map(|(e, c)| (e, Entry::Node(c))).collect()
                }
            };
            for (env, entry) in orphans {
                let mut reinserted = vec![false; self.height + 1];
                self.insert_entry(env, entry, level, &mut reinserted);
            }
            level += 1;
        }
        // Shrink a root that has become a single-child internal node.
        while self.height > 0 {
            let Node::Internal { entries } = &self.nodes[self.root] else {
                break;
            };
            if entries.len() == 1 {
                self.root = entries[0].1;
                self.height -= 1;
            } else {
                break;
            }
        }
    }

    fn find_leaf_path(
        &self,
        node_id: usize,
        env: &Envelope,
        pred: &impl Fn(&T) -> bool,
    ) -> Option<Vec<usize>> {
        match &self.nodes[node_id] {
            Node::Leaf { entries } => {
                entries.iter().any(|(e, v)| e == env && pred(v)).then(|| vec![node_id])
            }
            Node::Internal { entries } => {
                for (e, child) in entries {
                    if e.contains_envelope(env) {
                        if let Some(mut path) = self.find_leaf_path(*child, env, pred) {
                            path.insert(0, node_id);
                            return Some(path);
                        }
                    }
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Calls `visit` for every entry whose envelope intersects `window`.
    pub fn query_window(&self, window: &Envelope, mut visit: impl FnMut(&Envelope, &T)) {
        let mut nodes_visited = 0u64;
        self.query_rec(self.root, window, &mut visit, &mut nodes_visited);
    }

    /// [`RTree::query_window`] that also reports how many tree nodes the
    /// probe inspected and how many candidates it emitted.
    pub fn query_window_probe(
        &self,
        window: &Envelope,
        mut visit: impl FnMut(&Envelope, &T),
    ) -> crate::ProbeStats {
        let mut stats = crate::ProbeStats::default();
        let mut counting = |e: &Envelope, v: &T| {
            stats.candidates += 1;
            visit(e, v);
        };
        self.query_rec(self.root, window, &mut counting, &mut stats.nodes_visited);
        stats
    }

    /// Collects the payloads of every entry intersecting `window`.
    pub fn window(&self, window: &Envelope) -> Vec<T> {
        let mut out = Vec::new();
        self.query_window(window, |_, v| out.push(v.clone()));
        out
    }

    fn query_rec(
        &self,
        node_id: usize,
        window: &Envelope,
        visit: &mut impl FnMut(&Envelope, &T),
        nodes_visited: &mut u64,
    ) {
        *nodes_visited += 1;
        match &self.nodes[node_id] {
            Node::Leaf { .. } => {
                for (e, v) in self.leaf_entries(node_id).iter() {
                    if e.intersects(window) {
                        visit(e, v);
                    }
                }
            }
            Node::Internal { entries } => {
                for (e, child) in entries {
                    if e.intersects(window) {
                        self.query_rec(*child, window, visit, nodes_visited);
                    }
                }
            }
        }
    }

    /// Best-first k-nearest-neighbour search from `query`, by envelope
    /// distance. Returns `(distance, payload)` pairs in ascending order.
    pub fn nearest(&self, query: Coord, k: usize) -> Vec<(f64, T)> {
        self.nearest_probe(query, k).0
    }

    /// [`RTree::nearest`] that also reports how many tree nodes the
    /// best-first search expanded and how many results it produced.
    pub fn nearest_probe(&self, query: Coord, k: usize) -> (Vec<(f64, T)>, crate::ProbeStats) {
        #[derive(PartialEq)]
        struct Cand {
            dist: f64,
            node: Option<usize>, // None = leaf entry
            entry: usize,
        }
        impl Eq for Cand {}
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap.
                other.dist.total_cmp(&self.dist)
            }
        }
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut stats = crate::ProbeStats::default();
        let mut out: Vec<(f64, T)> = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return (out, stats);
        }
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
        heap.push(Cand { dist: 0.0, node: Some(self.root), entry: 0 });
        while let Some(c) = heap.pop() {
            match c.node {
                Some(node_id) => {
                    stats.nodes_visited += 1;
                    match &self.nodes[node_id] {
                        Node::Internal { entries } => {
                            for (e, child) in entries {
                                heap.push(Cand {
                                    dist: e.distance_to_coord(query),
                                    node: Some(*child),
                                    entry: 0,
                                });
                            }
                        }
                        Node::Leaf { .. } => {
                            for (i, (e, _)) in self.leaf_entries(node_id).iter().enumerate() {
                                heap.push(Cand {
                                    dist: e.distance_to_coord(query),
                                    node: None,
                                    entry: i | (node_id << 32),
                                });
                            }
                        }
                    }
                }
                None => {
                    let node_id = c.entry >> 32;
                    let i = c.entry & 0xFFFF_FFFF;
                    if matches!(&self.nodes[node_id], Node::Leaf { .. }) {
                        stats.candidates += 1;
                        out.push((c.dist, self.leaf_entries(node_id)[i].1.clone()));
                        if out.len() == k {
                            break;
                        }
                    }
                }
            }
        }
        (out, stats)
    }
}

enum Entry<T> {
    Leaf(T),
    Node(usize),
}

fn center_x(e: &Envelope) -> f64 {
    (e.min_x + e.max_x) * 0.5
}
fn center_y(e: &Envelope) -> f64 {
    (e.min_y + e.max_y) * 0.5
}

fn sort_by_center_distance_leaf<T>(entries: &mut [(Envelope, T)], center: Coord) {
    entries.sort_by(|a, b| {
        let da = a.0.center().map_or(f64::INFINITY, |c| c.distance_sq(center));
        let db = b.0.center().map_or(f64::INFINITY, |c| c.distance_sq(center));
        da.total_cmp(&db)
    });
}

fn sort_by_center_distance_node(entries: &mut [(Envelope, usize)], center: Coord) {
    entries.sort_by(|a, b| {
        let da = a.0.center().map_or(f64::INFINITY, |c| c.distance_sq(center));
        let db = b.0.center().map_or(f64::INFINITY, |c| c.distance_sq(center));
        da.total_cmp(&db)
    });
}

fn pick_min_enlargement(entries: &[(Envelope, usize)], env: Envelope) -> usize {
    let mut best = 0;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, (e, _)) in entries.iter().enumerate() {
        let grown = e.union(&env);
        let key = (grown.area() - e.area(), e.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Sorts `entries` in place along the better split axis and returns the
/// index at which to split, following the R\*-tree margin/overlap rule.
fn rstar_split_point<T>(
    entries: &mut [(Envelope, T)],
    min_entries: usize,
    env_of: impl Fn(&(Envelope, T)) -> Envelope,
) -> usize {
    let total = entries.len();
    let upper = total - min_entries;

    // For each axis, compute the total margin over all valid distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        sort_axis(entries, axis, &env_of);
        let (prefix, suffix) = envelope_scans(entries, &env_of);
        let mut margin_sum = 0.0;
        for split in min_entries..=upper {
            margin_sum += prefix[split - 1].margin() + suffix[split].margin();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }
    sort_axis(entries, best_axis, &env_of);
    let (prefix, suffix) = envelope_scans(entries, &env_of);
    let mut best_split = min_entries;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for split in min_entries..=upper {
        let left = prefix[split - 1];
        let right = suffix[split];
        let overlap = left.intersection(&right).map_or(0.0, |e| e.area());
        let key = (overlap, left.area() + right.area());
        if key < best_key {
            best_key = key;
            best_split = split;
        }
    }
    best_split
}

fn sort_axis<T>(
    entries: &mut [(Envelope, T)],
    axis: usize,
    env_of: &impl Fn(&(Envelope, T)) -> Envelope,
) {
    entries.sort_by(|a, b| {
        let (ea, eb) = (env_of(a), env_of(b));
        if axis == 0 {
            ea.min_x.total_cmp(&eb.min_x).then(ea.max_x.total_cmp(&eb.max_x))
        } else {
            ea.min_y.total_cmp(&eb.min_y).then(ea.max_y.total_cmp(&eb.max_y))
        }
    });
}

/// Prefix/suffix running envelopes of a sorted entry list.
fn envelope_scans<T>(
    entries: &[(Envelope, T)],
    env_of: &impl Fn(&(Envelope, T)) -> Envelope,
) -> (Vec<Envelope>, Vec<Envelope>) {
    let n = entries.len();
    let mut prefix = vec![Envelope::EMPTY; n];
    let mut acc = Envelope::EMPTY;
    for (i, e) in entries.iter().enumerate() {
        acc.expand_to_include(&env_of(e));
        prefix[i] = acc;
    }
    let mut suffix = vec![Envelope::EMPTY; n];
    let mut acc = Envelope::EMPTY;
    for i in (0..n).rev() {
        acc.expand_to_include(&env_of(&entries[i]));
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt_env(x: f64, y: f64) -> Envelope {
        Envelope::new(x, y, x, y)
    }

    /// Deterministic pseudo-random point cloud.
    fn cloud(n: usize) -> Vec<(Envelope, usize)> {
        let mut state = 0x12345678u64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 10_000) as f64 / 10.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = ((state >> 33) % 10_000) as f64 / 10.0;
            out.push((pt_env(x, y), i));
        }
        out
    }

    #[test]
    fn insert_and_window_query() {
        let mut t: RTree<usize> = RTree::default();
        for (e, v) in cloud(500) {
            t.insert(e, v);
        }
        assert_eq!(t.len(), 500);
        let window = Envelope::new(100.0, 100.0, 300.0, 300.0);
        let mut got = t.window(&window);
        got.sort_unstable();
        // Compare against brute force.
        let mut want: Vec<usize> =
            cloud(500).into_iter().filter(|(e, _)| window.intersects(e)).map(|(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = cloud(2000);
        let t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        assert_eq!(t.len(), 2000);
        for window in [
            Envelope::new(0.0, 0.0, 50.0, 50.0),
            Envelope::new(500.0, 500.0, 700.0, 900.0),
            Envelope::new(999.0, 999.0, 1000.0, 1000.0),
            Envelope::new(-10.0, -10.0, -5.0, -5.0),
        ] {
            let mut got = t.window(&window);
            got.sort_unstable();
            let mut want: Vec<usize> =
                items.iter().filter(|(e, _)| window.intersects(e)).map(|(_, v)| *v).collect();
            want.sort_unstable();
            assert_eq!(got, want, "window {window:?}");
        }
    }

    #[test]
    fn parallel_bulk_load_matches_serial_structure() {
        // Above the parallel cutoff, every worker count must reproduce
        // the serial tree node-for-node (same ids, same entries).
        let items = cloud(20_000);
        let serial = RTree::bulk_load(RTreeConfig::default(), items.clone());
        for workers in [1, 2, 3, 4, 7] {
            let par = RTree::bulk_load_parallel(RTreeConfig::default(), items.clone(), workers);
            assert_eq!(par.len(), serial.len(), "workers={workers}");
            assert_eq!(par.root, serial.root, "workers={workers}");
            assert_eq!(par.height, serial.height, "workers={workers}");
            assert_eq!(par.nodes.len(), serial.nodes.len(), "workers={workers}");
            for (i, (a, b)) in par.nodes.iter().zip(&serial.nodes).enumerate() {
                match (a, b) {
                    (Node::Leaf { entries: ea }, Node::Leaf { entries: eb }) => {
                        assert_eq!(ea, eb, "leaf {i} differs at workers={workers}")
                    }
                    (Node::Internal { entries: ea }, Node::Internal { entries: eb }) => {
                        assert_eq!(ea, eb, "internal {i} differs at workers={workers}")
                    }
                    _ => panic!("node {i} kind differs at workers={workers}"),
                }
            }
        }
        // Tiny inputs take the serial path but must still answer queries.
        let small = cloud(100);
        let t = RTree::bulk_load_parallel(RTreeConfig::default(), small.clone(), 8);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = cloud(800);
        let t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let q = Coord::new(500.0, 500.0);
        let got = t.nearest(q, 10);
        assert_eq!(got.len(), 10);
        let mut dists: Vec<f64> = items.iter().map(|(e, _)| e.distance_to_coord(q)).collect();
        dists.sort_by(f64::total_cmp);
        for (i, (d, _)) in got.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-9, "k={i}: {d} vs {}", dists[i]);
        }
        // Ascending order.
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn knn_edge_cases() {
        let t: RTree<usize> = RTree::default();
        assert!(t.nearest(Coord::new(0.0, 0.0), 5).is_empty());
        let mut t: RTree<usize> = RTree::default();
        t.insert(pt_env(1.0, 1.0), 7);
        let r = t.nearest(Coord::new(0.0, 0.0), 5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, 7);
        assert!(t.nearest(Coord::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn removal_and_condensation() {
        let items = cloud(300);
        let mut t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        // Remove half the entries.
        for (e, v) in items.iter().take(150) {
            let removed = t.remove(e, |x| x == v);
            assert_eq!(removed, Some(*v), "failed to remove {v}");
        }
        assert_eq!(t.len(), 150);
        // Remaining entries still queryable.
        let all = Envelope::new(-1.0, -1.0, 2000.0, 2000.0);
        let mut got = t.window(&all);
        got.sort_unstable();
        let want: Vec<usize> = (150..300).collect();
        assert_eq!(got, want);
        // Removing a non-existent entry returns None.
        assert_eq!(t.remove(&pt_env(-99.0, -99.0), |_| true), None);
    }

    #[test]
    fn envelopes_stay_consistent_under_mixed_workload() {
        let mut t: RTree<usize> = RTree::default();
        let items = cloud(400);
        for (e, v) in items.iter().take(200) {
            t.insert(*e, *v);
        }
        for (e, v) in items.iter().take(100) {
            assert!(t.remove(e, |x| x == v).is_some());
        }
        for (e, v) in items.iter().skip(200) {
            t.insert(*e, *v);
        }
        assert_eq!(t.len(), 300);
        let mut got = t.window(&Envelope::new(-1.0, -1.0, 2000.0, 2000.0));
        got.sort_unstable();
        let want: Vec<usize> = (100..400).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn rectangles_not_just_points() {
        let mut t: RTree<&str> = RTree::default();
        t.insert(Envelope::new(0.0, 0.0, 10.0, 10.0), "big");
        t.insert(Envelope::new(2.0, 2.0, 3.0, 3.0), "small");
        t.insert(Envelope::new(20.0, 20.0, 30.0, 30.0), "far");
        let hits = t.window(&Envelope::new(2.5, 2.5, 2.6, 2.6));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&"big") && hits.contains(&"small"));
    }

    #[test]
    fn forced_reinsert_ablation_still_correct() {
        let cfg = RTreeConfig { forced_reinsert: false, ..RTreeConfig::default() };
        let mut t: RTree<usize> = RTree::new(cfg);
        let items = cloud(600);
        for (e, v) in &items {
            t.insert(*e, *v);
        }
        let window = Envelope::new(200.0, 200.0, 400.0, 400.0);
        let mut got = t.window(&window);
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(e, _)| window.intersects(e)).map(|(_, v)| *v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_reflect_structure() {
        let t = RTree::bulk_load(RTreeConfig::default(), cloud(1000));
        let s = t.stats();
        assert_eq!(s.entries, 1000);
        assert!(s.height >= 2, "1000 entries with M=16 must be at least 2 levels");
        assert!(s.nodes > 1000 / 16);
    }

    #[test]
    fn probe_stats_reflect_work() {
        let items = cloud(2000);
        let t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let window = Envelope::new(100.0, 100.0, 300.0, 300.0);
        let mut hits = 0u64;
        let stats = t.query_window_probe(&window, |_, _| hits += 1);
        assert_eq!(stats.candidates, hits);
        assert!(hits > 0);
        // The probe visited at least the root, and a selective window
        // must not walk the entire tree.
        assert!(stats.nodes_visited >= 1);
        assert!((stats.nodes_visited as usize) < t.nodes.len());
        // Probe results match the plain query path.
        assert_eq!(t.window(&window).len() as u64, stats.candidates);

        let (nn, nn_stats) = t.nearest_probe(Coord::new(500.0, 500.0), 10);
        assert_eq!(nn.len(), 10);
        assert_eq!(nn_stats.candidates, 10);
        assert!(nn_stats.nodes_visited >= 1);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn bad_config_panics() {
        let _: RTree<usize> =
            RTree::new(RTreeConfig { max_entries: 8, min_entries: 5, ..Default::default() });
    }

    /// HashMap-backed pager for spill tests.
    #[derive(Debug, Default)]
    struct MapPager {
        blobs: Mutex<HashMap<u64, Vec<u8>>>,
        reads: std::sync::atomic::AtomicU64,
    }

    impl LeafPager for MapPager {
        fn write(&self, leaf: u64, bytes: &[u8]) {
            self.blobs.lock().insert(leaf, bytes.to_vec());
        }
        fn read(&self, leaf: u64) -> Option<Vec<u8>> {
            self.reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.blobs.lock().get(&leaf).cloned()
        }
    }

    #[test]
    fn leaf_codec_roundtrip_preserves_payloads_and_empty_envelopes() {
        let entries: Vec<(Envelope, RowId)> = vec![
            (Envelope::new(1.0, 2.0, 3.0, 4.0), RowId { page: 0, slot: 0 }),
            (Envelope::EMPTY, RowId { page: 7, slot: 3 }),
            (Envelope::new(-5.5, -6.5, -1.0, 0.0), RowId { page: u32::MAX, slot: u16::MAX }),
        ];
        let bytes = encode_leaf(&entries);
        let back = decode_leaf::<RowId>(&bytes).expect("decodes");
        assert_eq!(back, entries);
        // EMPTY must survive bit-exactly (Envelope::new would normalize it).
        assert!(back[1].0.min_x.is_infinite() && back[1].0.max_x.is_infinite());
        // Truncated images are rejected, not misread.
        assert!(decode_leaf::<RowId>(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_leaf::<RowId>(&[]).is_none());
    }

    #[test]
    fn spilled_tree_answers_queries_identically() {
        let items = cloud(2000);
        let mut t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let window = Envelope::new(100.0, 100.0, 400.0, 350.0);
        let want_window = {
            let mut v = t.window(&window);
            v.sort_unstable();
            v
        };
        let want_knn = t.nearest(Coord::new(500.0, 500.0), 25);

        let pager = Arc::new(MapPager::default());
        t.attach_pager(pager.clone());
        t.spill_leaves();
        assert!(t.spilled_leaves() > 0, "a 2000-entry tree has pageable leaves");
        assert!(t.has_pager());

        // Cold probe: leaves come back through the pager.
        let mut got = t.window(&window);
        got.sort_unstable();
        assert_eq!(got, want_window);
        assert!(pager.reads.load(std::sync::atomic::Ordering::Relaxed) > 0);

        // Warm probe: cached decodes, same answers.
        let reads_before = pager.reads.load(std::sync::atomic::Ordering::Relaxed);
        let mut warm = t.window(&window);
        warm.sort_unstable();
        assert_eq!(warm, want_window);
        assert_eq!(pager.reads.load(std::sync::atomic::Ordering::Relaxed), reads_before);

        // Cold switch drops the decoded cache; answers still match.
        t.clear_leaf_cache();
        assert_eq!(t.nearest(Coord::new(500.0, 500.0), 25), want_knn);
        assert!(pager.reads.load(std::sync::atomic::Ordering::Relaxed) > reads_before);

        // Clones share the pager and the spilled state.
        let c = t.clone();
        let mut cloned = c.window(&window);
        cloned.sort_unstable();
        assert_eq!(cloned, want_window);
    }

    #[test]
    fn mutation_after_spill_faults_leaves_back_in() {
        let items = cloud(1500);
        let mut t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        t.attach_pager(Arc::new(MapPager::default()));
        t.spill_leaves();
        assert!(t.spilled_leaves() > 0);

        t.insert(pt_env(123.5, 456.5), 999_999usize);
        assert_eq!(t.spilled_leaves(), 0, "insert must unspill");
        assert_eq!(t.len(), 1501);
        let got = t.window(&pt_env(123.5, 456.5));
        assert!(got.contains(&999_999));

        // Full contents intact after the unspill.
        let mut all = t.window(&Envelope::new(-1.0, -1.0, 1001.0, 1001.0));
        all.sort_unstable();
        assert_eq!(all.len(), 1501);

        // Spill again, then remove through the unspill path.
        t.spill_leaves();
        assert!(t.spilled_leaves() > 0, "pager stays attached for re-spill");
        let removed = t.remove(&pt_env(123.5, 456.5), |v| *v == 999_999);
        assert_eq!(removed, Some(999_999));
        assert_eq!(t.spilled_leaves(), 0);
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn height_zero_and_empty_trees_never_spill() {
        let mut empty: RTree<usize> = RTree::default();
        empty.attach_pager(Arc::new(MapPager::default()));
        empty.spill_leaves();
        assert_eq!(empty.spilled_leaves(), 0);

        let mut tiny = RTree::bulk_load(RTreeConfig::default(), cloud(5));
        assert_eq!(tiny.stats().height, 1, "5 entries fit in the root leaf");
        tiny.attach_pager(Arc::new(MapPager::default()));
        tiny.spill_leaves();
        assert_eq!(tiny.spilled_leaves(), 0, "root leaf stays resident");
        assert_eq!(tiny.window(&Envelope::new(-1.0, -1.0, 1001.0, 1001.0)).len(), 5);
    }
}
