//! Ordered attribute index (B-tree-backed) for non-spatial lookups —
//! street-name and zip-code access paths in the geocoding scenarios.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted multimap from keys to payloads with exact, range and (for
/// string keys) prefix lookups.
#[derive(Clone, Debug)]
pub struct OrderedIndex<K: Ord + Clone, T: Clone> {
    map: BTreeMap<K, Vec<T>>,
    len: usize,
}

impl<K: Ord + Clone, T: Clone> Default for OrderedIndex<K, T> {
    fn default() -> Self {
        OrderedIndex { map: BTreeMap::new(), len: 0 }
    }
}

impl<K: Ord + Clone, T: Clone> OrderedIndex<K, T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries (not distinct keys).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Inserts an entry under `key` (duplicates allowed).
    pub fn insert(&mut self, key: K, value: T) {
        self.map.entry(key).or_default().push(value);
        self.len += 1;
    }

    /// Removes one entry under `key` for which `pred` holds; returns it.
    pub fn remove(&mut self, key: &K, pred: impl Fn(&T) -> bool) -> Option<T> {
        let bucket = self.map.get_mut(key)?;
        let pos = bucket.iter().position(pred)?;
        let out = bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.map.remove(key);
        }
        self.len -= 1;
        Some(out)
    }

    /// All payloads stored under exactly `key`.
    pub fn get(&self, key: &K) -> &[T] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Payloads for keys in `[lo, hi]` (inclusive), in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<T> {
        let mut out = Vec::new();
        for (_, bucket) in
            self.map.range((Bound::Included(lo.clone()), Bound::Included(hi.clone())))
        {
            out.extend(bucket.iter().cloned());
        }
        out
    }
}

impl<T: Clone> OrderedIndex<String, T> {
    /// Payloads for every key starting with `prefix`, in key order.
    pub fn prefix(&self, prefix: &str) -> Vec<T> {
        let mut out = Vec::new();
        for (k, bucket) in self.map.range(prefix.to_string()..) {
            if !k.starts_with(prefix) {
                break;
            }
            out.extend(bucket.iter().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_duplicates() {
        let mut idx: OrderedIndex<String, usize> = OrderedIndex::new();
        idx.insert("OAK ST".into(), 1);
        idx.insert("OAK ST".into(), 2);
        idx.insert("ELM AVE".into(), 3);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.key_count(), 2);
        let mut hits = idx.get(&"OAK ST".to_string()).to_vec();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert!(idx.get(&"PINE RD".to_string()).is_empty());
    }

    #[test]
    fn range_scan() {
        let mut idx: OrderedIndex<i64, char> = OrderedIndex::new();
        for (k, v) in [(10, 'a'), (20, 'b'), (30, 'c'), (40, 'd')] {
            idx.insert(k, v);
        }
        assert_eq!(idx.range(&15, &35), vec!['b', 'c']);
        assert_eq!(idx.range(&10, &10), vec!['a']);
        assert_eq!(idx.range(&50, &60), Vec::<char>::new());
    }

    #[test]
    fn prefix_scan() {
        let mut idx: OrderedIndex<String, usize> = OrderedIndex::new();
        idx.insert("OAK ST".into(), 1);
        idx.insert("OAKWOOD DR".into(), 2);
        idx.insert("ELM AVE".into(), 3);
        idx.insert("OAL".into(), 4);
        let mut hits = idx.prefix("OAK");
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(idx.prefix("Z"), Vec::<usize>::new());
        assert_eq!(idx.prefix("").len(), 4);
    }

    #[test]
    fn removal() {
        let mut idx: OrderedIndex<String, usize> = OrderedIndex::new();
        idx.insert("A".into(), 1);
        idx.insert("A".into(), 2);
        assert_eq!(idx.remove(&"A".to_string(), |&v| v == 1), Some(1));
        assert_eq!(idx.get(&"A".to_string()), &[2]);
        assert_eq!(idx.remove(&"A".to_string(), |&v| v == 9), None);
        assert_eq!(idx.remove(&"A".to_string(), |&v| v == 2), Some(2));
        assert!(idx.is_empty());
        assert_eq!(idx.key_count(), 0);
    }
}
