//! Fixed-grid (tessellation) spatial index, modelling the tile-based
//! indexing of the commercial system in Jackpine's evaluation.
//!
//! The extent is divided into `cols × rows` cells; each entry is recorded
//! in every cell its envelope overlaps. Window queries visit the covered
//! cell range and deduplicate multi-assigned entries with a query-epoch
//! stamp, so repeated queries never rescan or reallocate.

use jackpine_geom::{Coord, Envelope};

/// A fixed multi-assignment grid over a bounded extent.
#[derive(Debug)]
pub struct GridIndex<T: Clone> {
    extent: Envelope,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<u32>>,
    /// Entry storage; multi-assigned cells reference entries by index.
    entries: Vec<(Envelope, T)>,
    /// Tombstones for removed entries.
    dead: Vec<bool>,
    /// Per-entry visit stamp for query-time deduplication.
    stamps: std::sync::Mutex<(u64, Vec<u64>)>,
}

impl<T: Clone> Clone for GridIndex<T> {
    fn clone(&self) -> Self {
        GridIndex {
            extent: self.extent,
            cols: self.cols,
            rows: self.rows,
            cell_w: self.cell_w,
            cell_h: self.cell_h,
            cells: self.cells.clone(),
            entries: self.entries.clone(),
            dead: self.dead.clone(),
            stamps: std::sync::Mutex::new((0, vec![0; self.entries.len()])),
        }
    }
}

impl<T: Clone> GridIndex<T> {
    /// Creates an empty grid covering `extent` with the given resolution.
    ///
    /// Entries falling outside the extent are clamped into the border
    /// cells, so the index remains correct (if slower) for stragglers.
    ///
    /// # Panics
    /// If `extent` is empty or a dimension is zero.
    pub fn new(extent: Envelope, cols: usize, rows: usize) -> GridIndex<T> {
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        GridIndex {
            extent,
            cols,
            rows,
            cell_w: extent.width() / cols as f64,
            cell_h: extent.height() / rows as f64,
            cells: vec![Vec::new(); cols * rows],
            entries: Vec::new(),
            dead: Vec::new(),
            stamps: std::sync::Mutex::new((0, Vec::new())),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// `true` when no live entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structure statistics.
    pub fn stats(&self) -> crate::IndexStats {
        crate::IndexStats {
            height: 1,
            entries: self.len(),
            nodes: self.cells.iter().filter(|c| !c.is_empty()).count(),
        }
    }

    fn col_of(&self, x: f64) -> usize {
        if self.cell_w == 0.0 {
            return 0;
        }
        (((x - self.extent.min_x) / self.cell_w).floor() as i64).clamp(0, self.cols as i64 - 1)
            as usize
    }

    fn row_of(&self, y: f64) -> usize {
        if self.cell_h == 0.0 {
            return 0;
        }
        (((y - self.extent.min_y) / self.cell_h).floor() as i64).clamp(0, self.rows as i64 - 1)
            as usize
    }

    fn cell_range(&self, env: &Envelope) -> (usize, usize, usize, usize) {
        (
            self.col_of(env.min_x),
            self.col_of(env.max_x),
            self.row_of(env.min_y),
            self.row_of(env.max_y),
        )
    }

    /// Inserts an entry, assigning it to every overlapped cell.
    pub fn insert(&mut self, env: Envelope, value: T) {
        let id = self.entries.len() as u32;
        self.entries.push((env, value));
        let (c0, c1, r0, r1) = self.cell_range(&env);
        for r in r0..=r1 {
            for c in c0..=c1 {
                self.cells[r * self.cols + c].push(id);
            }
        }
        self.dead.push(false);
        self.stamps.lock().expect("stamp lock").1.push(0);
    }

    /// Calls `visit` once per entry whose envelope intersects `window`.
    pub fn query_window(&self, window: &Envelope, visit: impl FnMut(&Envelope, &T)) {
        self.query_window_probe(window, visit);
    }

    /// [`GridIndex::query_window`] that also reports how many grid cells
    /// the probe inspected and how many candidates it emitted.
    pub fn query_window_probe(
        &self,
        window: &Envelope,
        mut visit: impl FnMut(&Envelope, &T),
    ) -> crate::ProbeStats {
        let mut stats = crate::ProbeStats::default();
        if window.is_empty() {
            return stats;
        }
        let mut stamps = self.stamps.lock().expect("stamp lock");
        stamps.0 += 1;
        let epoch = stamps.0;
        let (c0, c1, r0, r1) = self.cell_range(window);
        for r in r0..=r1 {
            for c in c0..=c1 {
                stats.nodes_visited += 1;
                for &id in &self.cells[r * self.cols + c] {
                    let stamp = &mut stamps.1[id as usize];
                    if *stamp == epoch {
                        continue;
                    }
                    *stamp = epoch;
                    if self.dead[id as usize] {
                        continue;
                    }
                    let (env, value) = &self.entries[id as usize];
                    if env.intersects(window) {
                        stats.candidates += 1;
                        visit(env, value);
                    }
                }
            }
        }
        stats
    }

    /// Removes one entry matching `env` exactly for which `pred` holds,
    /// by tombstoning it (cells keep the id; queries skip dead entries).
    /// Returns the removed payload, if any.
    pub fn remove(&mut self, env: &Envelope, pred: impl Fn(&T) -> bool) -> Option<T> {
        let (c0, c1, r0, r1) = self.cell_range(env);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &id in &self.cells[r * self.cols + c] {
                    let (e, v) = &self.entries[id as usize];
                    if e == env && !self.dead[id as usize] && pred(v) {
                        self.dead[id as usize] = true;
                        return Some(self.entries[id as usize].1.clone());
                    }
                }
            }
        }
        None
    }

    /// Collects the payloads of every entry intersecting `window`.
    pub fn window(&self, window: &Envelope) -> Vec<T> {
        let mut out = Vec::new();
        self.query_window(window, |_, v| out.push(v.clone()));
        out
    }

    /// k-nearest-neighbour search by expanding square ring of cells.
    /// Returns `(distance, payload)` pairs in ascending distance order.
    pub fn nearest(&self, query: Coord, k: usize) -> Vec<(f64, T)> {
        self.nearest_probe(query, k).0
    }

    /// [`GridIndex::nearest`] that also reports how many grid cells the
    /// ring search inspected and how many results it produced.
    pub fn nearest_probe(&self, query: Coord, k: usize) -> (Vec<(f64, T)>, crate::ProbeStats) {
        let mut stats = crate::ProbeStats::default();
        if k == 0 || self.entries.is_empty() {
            return (Vec::new(), stats);
        }
        let mut best: Vec<(f64, u32)> = Vec::new();
        let qc = self.col_of(query.x);
        let qr = self.row_of(query.y);
        let max_radius = self.cols.max(self.rows);
        let mut stamps = self.stamps.lock().expect("stamp lock");
        stamps.0 += 1;
        let epoch = stamps.0;

        for radius in 0..=max_radius {
            // Once we have k candidates, stop as soon as the closest
            // unvisited ring cannot contain anything closer.
            if best.len() >= k {
                let ring_dist = (radius.saturating_sub(1)) as f64 * self.cell_w.min(self.cell_h);
                if best[k - 1].0 <= ring_dist {
                    break;
                }
            }
            let mut any_cell = false;
            for (r, c) in ring_cells(qr, qc, radius, self.rows, self.cols) {
                any_cell = true;
                stats.nodes_visited += 1;
                for &id in &self.cells[r * self.cols + c] {
                    let stamp = &mut stamps.1[id as usize];
                    if *stamp == epoch {
                        continue;
                    }
                    *stamp = epoch;
                    if self.dead[id as usize] {
                        continue;
                    }
                    let d = self.entries[id as usize].0.distance_to_coord(query);
                    let pos = best.partition_point(|&(bd, _)| bd <= d);
                    best.insert(pos, (d, id));
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
            if !any_cell && radius > 0 {
                break; // ring fully outside the grid
            }
        }
        stats.candidates = best.len() as u64;
        let out =
            best.into_iter().map(|(d, id)| (d, self.entries[id as usize].1.clone())).collect();
        (out, stats)
    }
}

/// The cells on the square ring at `radius` around `(qr, qc)`, clipped to
/// the grid bounds.
fn ring_cells(
    qr: usize,
    qc: usize,
    radius: usize,
    rows: usize,
    cols: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let (qr, qc, radius) = (qr as i64, qc as i64, radius as i64);
    let (rows, cols) = (rows as i64, cols as i64);
    let mut out: Vec<(usize, usize)> = Vec::new();
    if radius == 0 {
        if qr >= 0 && qr < rows && qc >= 0 && qc < cols {
            out.push((qr as usize, qc as usize));
        }
        return out.into_iter();
    }
    for c in (qc - radius)..=(qc + radius) {
        for r in [qr - radius, qr + radius] {
            if r >= 0 && r < rows && c >= 0 && c < cols {
                out.push((r as usize, c as usize));
            }
        }
    }
    for r in (qr - radius + 1)..=(qr + radius - 1) {
        for c in [qc - radius, qc + radius] {
            if r >= 0 && r < rows && c >= 0 && c < cols {
                out.push((r as usize, c as usize));
            }
        }
    }
    out.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<(Envelope, usize)> {
        let mut state = 0xdeadbeefu64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 1000) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = ((state >> 33) % 1000) as f64;
            out.push((Envelope::new(x, y, x + 5.0, y + 5.0), i));
        }
        out
    }

    fn build(n: usize) -> (GridIndex<usize>, Vec<(Envelope, usize)>) {
        let items = cloud(n);
        let mut g = GridIndex::new(Envelope::new(0.0, 0.0, 1010.0, 1010.0), 32, 32);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        (g, items)
    }

    #[test]
    fn window_query_matches_brute_force() {
        let (g, items) = build(1500);
        for window in [
            Envelope::new(0.0, 0.0, 100.0, 100.0),
            Envelope::new(500.0, 200.0, 800.0, 300.0),
            Envelope::new(-50.0, -50.0, -10.0, -10.0),
            Envelope::new(0.0, 0.0, 1010.0, 1010.0),
        ] {
            let mut got = g.window(&window);
            got.sort_unstable();
            let mut want: Vec<usize> =
                items.iter().filter(|(e, _)| window.intersects(e)).map(|(_, v)| *v).collect();
            want.sort_unstable();
            assert_eq!(got, want, "window {window:?}");
        }
    }

    #[test]
    fn multi_cell_entries_not_duplicated() {
        let mut g = GridIndex::new(Envelope::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        // Spans many cells.
        g.insert(Envelope::new(5.0, 5.0, 95.0, 95.0), 1usize);
        let hits = g.window(&Envelope::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn out_of_extent_entries_clamped_but_found() {
        let mut g = GridIndex::new(Envelope::new(0.0, 0.0, 100.0, 100.0), 4, 4);
        g.insert(Envelope::new(150.0, 150.0, 160.0, 160.0), 9usize);
        let hits = g.window(&Envelope::new(140.0, 140.0, 170.0, 170.0));
        assert_eq!(hits, vec![9]);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let (g, items) = build(700);
        let q = Coord::new(473.0, 519.0);
        let got = g.nearest(q, 8);
        assert_eq!(got.len(), 8);
        let mut dists: Vec<f64> = items.iter().map(|(e, _)| e.distance_to_coord(q)).collect();
        dists.sort_by(f64::total_cmp);
        for (i, (d, _)) in got.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-9, "k={i}: got {d}, want {}", dists[i]);
        }
    }

    #[test]
    fn nearest_corner_query() {
        let (g, items) = build(300);
        let q = Coord::new(0.0, 0.0);
        let got = g.nearest(q, 3);
        let mut dists: Vec<f64> = items.iter().map(|(e, _)| e.distance_to_coord(q)).collect();
        dists.sort_by(f64::total_cmp);
        assert!((got[0].0 - dists[0]).abs() < 1e-9);
        assert!((got[2].0 - dists[2]).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_k() {
        let g: GridIndex<usize> = GridIndex::new(Envelope::new(0.0, 0.0, 1.0, 1.0), 2, 2);
        assert!(g.nearest(Coord::new(0.5, 0.5), 3).is_empty());
        assert!(g.is_empty());
        let (g, _) = build(10);
        assert!(g.nearest(Coord::new(0.5, 0.5), 0).is_empty());
    }

    #[test]
    fn probe_stats_reflect_work() {
        let (g, _) = build(1500);
        let window = Envelope::new(500.0, 200.0, 800.0, 300.0);
        let mut hits = 0u64;
        let stats = g.query_window_probe(&window, |_, _| hits += 1);
        assert_eq!(stats.candidates, hits);
        assert!(hits > 0);
        // Cells visited = the covered cell range, never the whole grid.
        assert!(stats.nodes_visited >= 1);
        assert!((stats.nodes_visited as usize) < 32 * 32);

        let (nn, nn_stats) = g.nearest_probe(Coord::new(473.0, 519.0), 8);
        assert_eq!(nn.len(), 8);
        assert_eq!(nn_stats.candidates, 8);
        assert!(nn_stats.nodes_visited >= 1);
    }

    #[test]
    fn stats_count_occupied_cells() {
        let (g, _) = build(100);
        let s = g.stats();
        assert_eq!(s.entries, 100);
        assert!(s.nodes > 0 && s.nodes <= 32 * 32);
    }
}
