//! The TIGER-like dataset generator.

use crate::names;
use crate::rng::Rng;
use jackpine_geom::{Coord, Envelope, Geometry, LineString, Point, Polygon};

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TigerConfig {
    /// Master seed; every derived RNG mixes a table tag into it.
    pub seed: u64,
    /// Size multiplier: row counts scale linearly (1.0 ≈ a mid-size
    /// state extract).
    pub scale: f64,
}

impl Default for TigerConfig {
    fn default() -> Self {
        TigerConfig { seed: 0x6a61_636b_7069_6e65, scale: 1.0 } // "jackpine"
    }
}

/// Extent of the synthetic state (Texas-like, in lon/lat degrees).
pub const EXTENT: Envelope = Envelope { min_x: -106.0, min_y: 25.8, max_x: -93.5, max_y: 36.5 };

/// A county boundary record.
#[derive(Clone, Debug)]
pub struct County {
    /// Record id.
    pub id: i64,
    /// County name.
    pub name: String,
    /// Boundary polygon (exactly shared edges with neighbours).
    pub geom: Polygon,
}

/// A road record (TIGER "edges"): named polyline with an address range.
#[derive(Clone, Debug)]
pub struct Road {
    /// Record id.
    pub id: i64,
    /// Full street name, e.g. `N OAK ST`.
    pub name: String,
    /// 5-digit zip code of the containing county cell.
    pub zip: i64,
    /// Lowest street number on the road.
    pub from_addr: i64,
    /// Highest street number on the road.
    pub to_addr: i64,
    /// Centreline geometry.
    pub geom: LineString,
}

/// An area landmark (parks, schools, …).
#[derive(Clone, Debug)]
pub struct AreaLandmark {
    /// Record id.
    pub id: i64,
    /// Landmark name.
    pub name: String,
    /// TIGER CFCC-style category code.
    pub category: String,
    /// Footprint polygon.
    pub geom: Polygon,
}

/// A point landmark.
#[derive(Clone, Debug)]
pub struct PointLandmark {
    /// Record id.
    pub id: i64,
    /// Landmark name.
    pub name: String,
    /// TIGER CFCC-style category code.
    pub category: String,
    /// Location.
    pub geom: Point,
}

/// A water body: river band or lake polygon.
#[derive(Clone, Debug)]
pub struct AreaWater {
    /// Record id.
    pub id: i64,
    /// Water body name.
    pub name: String,
    /// Polygon (long band for rivers, blob for lakes).
    pub geom: Polygon,
}

/// The full synthetic dataset.
#[derive(Clone, Debug, Default)]
pub struct TigerDataset {
    /// County boundaries.
    pub counties: Vec<County>,
    /// Road centrelines.
    pub roads: Vec<Road>,
    /// Area landmarks.
    pub arealm: Vec<AreaLandmark>,
    /// Point landmarks.
    pub pointlm: Vec<PointLandmark>,
    /// Water bodies.
    pub areawater: Vec<AreaWater>,
}

impl TigerDataset {
    /// Generates the dataset for `config`.
    pub fn generate(config: &TigerConfig) -> TigerDataset {
        let scale = config.scale.max(0.01);
        let grid = ((8.0 * scale.sqrt()).round() as usize).clamp(2, 24);
        let (counties, xs, ys) = gen_counties(config.seed, grid);
        let roads = gen_roads(config.seed, &xs, &ys, scale);
        let arealm = gen_arealm(config.seed, scale);
        let pointlm = gen_pointlm(config.seed, scale);
        let areawater = gen_areawater(config.seed, scale);
        TigerDataset { counties, roads, arealm, pointlm, areawater }
    }

    /// Total records across all tables.
    pub fn total_rows(&self) -> usize {
        self.counties.len()
            + self.roads.len()
            + self.arealm.len()
            + self.pointlm.len()
            + self.areawater.len()
    }
}

fn rng_for(seed: u64, tag: u64) -> Rng {
    Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag))
}

fn jitter(rng: &mut Rng, amount: f64) -> f64 {
    rng.gen_range(-amount..amount)
}

/// County grid with shared jittered boundaries: each interior gridline is
/// a polyline with consistent intermediate vertices, so both neighbouring
/// counties use bitwise-identical edge geometry.
fn gen_counties(seed: u64, grid: usize) -> (Vec<County>, Vec<Vec<Coord>>, Vec<Vec<Coord>>) {
    let mut rng = rng_for(seed, 1);
    let w = EXTENT.width() / grid as f64;
    let h = EXTENT.height() / grid as f64;

    // Gridline base positions (jittered interior lines, exact borders).
    let mut xpos: Vec<f64> = (0..=grid).map(|i| EXTENT.min_x + i as f64 * w).collect();
    let mut ypos: Vec<f64> = (0..=grid).map(|j| EXTENT.min_y + j as f64 * h).collect();
    for x in xpos.iter_mut().skip(1).take(grid - 1) {
        *x += jitter(&mut rng, w * 0.12);
    }
    for y in ypos.iter_mut().skip(1).take(grid - 1) {
        *y += jitter(&mut rng, h * 0.12);
    }

    // Vertical gridlines: for column line i, the vertices at each row
    // junction plus a jittered midpoint per cell row. xs[i][k] runs south
    // to north.
    let mut vlines: Vec<Vec<Coord>> = Vec::with_capacity(grid + 1);
    for (i, &x) in xpos.iter().enumerate() {
        let interior = i > 0 && i < grid;
        let mut pts = Vec::with_capacity(2 * grid + 1);
        for j in 0..grid {
            let y0 = ypos[j];
            let y1 = ypos[j + 1];
            let xm = if interior { x + jitter(&mut rng, w * 0.06) } else { x };
            pts.push(Coord::new(x, y0));
            pts.push(Coord::new(xm, (y0 + y1) * 0.5));
        }
        pts.push(Coord::new(x, ypos[grid]));
        vlines.push(pts);
    }
    // Horizontal gridlines, west to east.
    let mut hlines: Vec<Vec<Coord>> = Vec::with_capacity(grid + 1);
    for (j, &y) in ypos.iter().enumerate() {
        let interior = j > 0 && j < grid;
        let mut pts = Vec::with_capacity(2 * grid + 1);
        for i in 0..grid {
            let x0 = xpos[i];
            let x1 = xpos[i + 1];
            let ym = if interior { y + jitter(&mut rng, h * 0.06) } else { y };
            pts.push(Coord::new(x0, y));
            pts.push(Coord::new((x0 + x1) * 0.5, ym));
        }
        pts.push(Coord::new(xpos[grid], y));
        hlines.push(pts);
    }

    // Corners must be consistent between the two line families; rebuild
    // both so that junction vertices come from (xpos, ypos) exactly —
    // they already do by construction above.

    let mut counties = Vec::with_capacity(grid * grid);
    let mut id = 1i64;
    for j in 0..grid {
        for i in 0..grid {
            // Ring: south edge west→east, east edge south→north, north
            // edge east→west, west edge north→south.
            let mut ring: Vec<Coord> = Vec::with_capacity(12);
            // hlines[j] slice covering cell i: indices 2i..=2i+2.
            ring.extend_from_slice(&hlines[j][2 * i..=2 * i + 2]);
            // vlines[i+1] slice covering cell j: indices 2j..=2j+2.
            ring.extend_from_slice(&vlines[i + 1][2 * j + 1..=2 * j + 2]);
            // hlines[j+1] reversed.
            let mut top: Vec<Coord> = hlines[j + 1][2 * i..=2 * i + 2].to_vec();
            top.reverse();
            ring.extend_from_slice(&top);
            // vlines[i] reversed.
            ring.push(vlines[i][2 * j + 1]);
            ring.push(vlines[i][2 * j]);
            ring.dedup();
            if ring.first() != ring.last() {
                ring.push(ring[0]);
            }
            let poly = Polygon::new(
                jackpine_geom::polygon::Ring::new(ring).expect("county ring is valid"),
                Vec::new(),
            );
            let base = names::COUNTY_NAMES[(id as usize - 1) % names::COUNTY_NAMES.len()];
            let name = if (id as usize) <= names::COUNTY_NAMES.len() {
                base.to_string()
            } else {
                format!("{base} {}", (id as usize - 1) / names::COUNTY_NAMES.len() + 1)
            };
            counties.push(County { id, name, geom: poly });
            id += 1;
        }
    }
    (counties, vlines, hlines)
}

/// Street grids per county cell, with names, zips and address ranges.
fn gen_roads(seed: u64, vlines: &[Vec<Coord>], hlines: &[Vec<Coord>], scale: f64) -> Vec<Road> {
    let mut rng = rng_for(seed, 2);
    let grid = vlines.len() - 1;
    let per_county = ((20_000.0 * scale) / (grid * grid) as f64).ceil() as usize;
    let mut roads = Vec::new();
    let mut id = 1i64;
    for j in 0..grid {
        for i in 0..grid {
            let zip = 75_000 + (j * grid + i) as i64;
            // Cell bounds from the (unjittered) junction coordinates.
            let x0 = vlines[i][2 * j].x;
            let x1 = vlines[i + 1][2 * j].x;
            let y0 = hlines[j][2 * i].y;
            let y1 = hlines[j + 1][2 * i].y;
            let inset = 0.06;
            let (x0, x1) = (x0 + (x1 - x0) * inset, x1 - (x1 - x0) * inset);
            let (y0, y1) = (y0 + (y1 - y0) * inset, y1 - (y1 - y0) * inset);
            for _ in 0..per_county {
                let horizontal = rng.gen_bool(0.5);
                let nseg = rng.gen_range(2..7usize);
                let mut pts: Vec<Coord> = Vec::with_capacity(nseg + 1);
                if horizontal {
                    let y = rng.gen_range(y0..y1);
                    let sx = rng.gen_range(x0..x1 * 0.5 + x0 * 0.5);
                    let len = rng.gen_range((x1 - x0) * 0.1..(x1 - x0) * 0.6);
                    let ex = (sx + len).min(x1);
                    for k in 0..=nseg {
                        let t = k as f64 / nseg as f64;
                        let wobble = jitter(&mut rng, (y1 - y0) * 0.01);
                        pts.push(Coord::new(sx + t * (ex - sx), y + wobble));
                    }
                } else {
                    let x = rng.gen_range(x0..x1);
                    let sy = rng.gen_range(y0..y1 * 0.5 + y0 * 0.5);
                    let len = rng.gen_range((y1 - y0) * 0.1..(y1 - y0) * 0.6);
                    let ey = (sy + len).min(y1);
                    for k in 0..=nseg {
                        let t = k as f64 / nseg as f64;
                        let wobble = jitter(&mut rng, (x1 - x0) * 0.01);
                        pts.push(Coord::new(x + wobble, sy + t * (ey - sy)));
                    }
                }
                pts.dedup();
                let Ok(geom) = LineString::new(pts) else {
                    continue; // degenerate wobble; skip
                };
                let dir = names::DIRECTIONS[rng.gen_range(0..names::DIRECTIONS.len())];
                let base = names::STREET_NAMES[rng.gen_range(0..names::STREET_NAMES.len())];
                let ty = names::STREET_TYPES[rng.gen_range(0..names::STREET_TYPES.len())];
                let name = if dir.is_empty() {
                    format!("{base} {ty}")
                } else {
                    format!("{dir} {base} {ty}")
                };
                let block = rng.gen_range(1..90i64);
                roads.push(Road {
                    id,
                    name,
                    zip,
                    from_addr: block * 100 + 1,
                    to_addr: block * 100 + 99,
                    geom,
                });
                id += 1;
            }
        }
    }
    roads
}

/// Star-convex blob polygon around a centre.
fn blob(rng: &mut Rng, center: Coord, radius: f64, verts: usize) -> Polygon {
    let mut pts = Vec::with_capacity(verts + 1);
    for k in 0..verts {
        let theta = std::f64::consts::TAU * k as f64 / verts as f64;
        let r = radius * rng.gen_range(0.55..1.0);
        pts.push(Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin()));
    }
    pts.push(pts[0]);
    Polygon::new(jackpine_geom::polygon::Ring::new(pts).expect("blob ring is valid"), Vec::new())
}

fn random_point(rng: &mut Rng) -> Coord {
    Coord::new(rng.gen_range(EXTENT.min_x..EXTENT.max_x), rng.gen_range(EXTENT.min_y..EXTENT.max_y))
}

/// Clustered random position: half the records concentrate around a few
/// metro hot spots, the rest spread uniformly (TIGER data is strongly
/// clustered, and index behaviour depends on it).
fn clustered_point(rng: &mut Rng, hotspots: &[Coord]) -> Coord {
    if rng.gen_bool(0.5) && !hotspots.is_empty() {
        let h = hotspots[rng.gen_range(0..hotspots.len())];
        let r = rng.gen_range(0.0..0.8f64);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let c = Coord::new(h.x + r * theta.cos(), h.y + r * theta.sin());
        if EXTENT.contains_coord(c) {
            return c;
        }
    }
    random_point(rng)
}

fn hotspots(rng: &mut Rng) -> Vec<Coord> {
    (0..6).map(|_| random_point(rng)).collect()
}

fn gen_arealm(seed: u64, scale: f64) -> Vec<AreaLandmark> {
    let mut rng = rng_for(seed, 3);
    let hot = hotspots(&mut rng);
    let count = (1500.0 * scale).ceil() as usize;
    let mut out = Vec::with_capacity(count);
    for id in 1..=count as i64 {
        let center = clustered_point(&mut rng, &hot);
        let radius = rng.gen_range(0.005..0.08);
        let verts = rng.gen_range(6..14usize);
        let (kind, code) = names::AREALM_KINDS[rng.gen_range(0..names::AREALM_KINDS.len())];
        let stem = names::STREET_NAMES[rng.gen_range(0..names::STREET_NAMES.len())];
        out.push(AreaLandmark {
            id,
            name: format!("{stem} {kind}"),
            category: code.to_string(),
            geom: blob(&mut rng, center, radius, verts),
        });
    }
    out
}

fn gen_pointlm(seed: u64, scale: f64) -> Vec<PointLandmark> {
    let mut rng = rng_for(seed, 4);
    let hot = hotspots(&mut rng);
    let count = (4000.0 * scale).ceil() as usize;
    let mut out = Vec::with_capacity(count);
    for id in 1..=count as i64 {
        let c = clustered_point(&mut rng, &hot);
        let (kind, code) = names::POINTLM_KINDS[rng.gen_range(0..names::POINTLM_KINDS.len())];
        let stem = names::STREET_NAMES[rng.gen_range(0..names::STREET_NAMES.len())];
        out.push(PointLandmark {
            id,
            name: format!("{stem} {kind}"),
            category: code.to_string(),
            geom: Point::from_coord(c).expect("extent coordinates are finite"),
        });
    }
    out
}

/// Rivers (long bands crossing the state west→east) plus lakes (blobs).
fn gen_areawater(seed: u64, scale: f64) -> Vec<AreaWater> {
    let mut rng = rng_for(seed, 5);
    let mut out = Vec::new();
    let mut id = 1i64;

    let river_count = ((4.0 * scale.sqrt()).ceil() as usize).clamp(2, 8);
    for r in 0..river_count {
        let name = format!("{} RIVER", names::RIVER_NAMES[r % names::RIVER_NAMES.len()]);
        let width = rng.gen_range(0.01..0.04);
        // Random-walk centreline west→east.
        let mut y = rng.gen_range(EXTENT.min_y + 1.0..EXTENT.max_y - 1.0);
        let steps = 40;
        let dx = EXTENT.width() / steps as f64;
        let mut center: Vec<Coord> = Vec::with_capacity(steps + 1);
        for k in 0..=steps {
            center.push(Coord::new(EXTENT.min_x + k as f64 * dx, y));
            y = (y + jitter(&mut rng, 0.25)).clamp(EXTENT.min_y + 0.5, EXTENT.max_y - 0.5);
        }
        // Band polygon: north side west→east, then south side east→west.
        let mut ring: Vec<Coord> = Vec::with_capacity(2 * center.len() + 1);
        for c in &center {
            ring.push(Coord::new(c.x, c.y + width));
        }
        for c in center.iter().rev() {
            ring.push(Coord::new(c.x, c.y - width));
        }
        ring.push(ring[0]);
        ring.dedup();
        if ring.first() != ring.last() {
            ring.push(ring[0]);
        }
        let geom = Polygon::new(
            jackpine_geom::polygon::Ring::new(ring).expect("river band ring is valid"),
            Vec::new(),
        );
        out.push(AreaWater { id, name, geom });
        id += 1;
    }

    let lake_count = (800.0 * scale).ceil() as usize;
    let hot = hotspots(&mut rng);
    for k in 0..lake_count {
        let center = clustered_point(&mut rng, &hot);
        let radius = rng.gen_range(0.01..0.12);
        let name = format!(
            "LAKE {} {}",
            names::LAKE_NAMES[k % names::LAKE_NAMES.len()],
            k / names::LAKE_NAMES.len() + 1
        );
        let verts = rng.gen_range(8..16usize);
        out.push(AreaWater { id, name, geom: blob(&mut rng, center, radius, verts) });
        id += 1;
    }
    out
}

/// Convenience: a record's geometry as a [`Geometry`] value.
impl County {
    /// Geometry as the closed sum type.
    pub fn geometry(&self) -> Geometry {
        Geometry::Polygon(self.geom.clone())
    }
}
impl Road {
    /// Geometry as the closed sum type.
    pub fn geometry(&self) -> Geometry {
        Geometry::LineString(self.geom.clone())
    }
}
impl AreaLandmark {
    /// Geometry as the closed sum type.
    pub fn geometry(&self) -> Geometry {
        Geometry::Polygon(self.geom.clone())
    }
}
impl PointLandmark {
    /// Geometry as the closed sum type.
    pub fn geometry(&self) -> Geometry {
        Geometry::Point(self.geom)
    }
}
impl AreaWater {
    /// Geometry as the closed sum type.
    pub fn geometry(&self) -> Geometry {
        Geometry::Polygon(self.geom.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TigerDataset {
        TigerDataset::generate(&TigerConfig { seed: 42, scale: 0.05 })
    }

    #[test]
    fn determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.roads.len(), b.roads.len());
        assert_eq!(a.roads[0].name, b.roads[0].name);
        assert_eq!(a.roads[0].geom, b.roads[0].geom);
        assert_eq!(a.counties[3].geom, b.counties[3].geom);
        // Different seed differs.
        let c = TigerDataset::generate(&TigerConfig { seed: 43, scale: 0.05 });
        assert_ne!(a.roads[0].geom, c.roads[0].geom);
    }

    #[test]
    fn scaling() {
        let small = TigerDataset::generate(&TigerConfig { seed: 1, scale: 0.05 });
        let large = TigerDataset::generate(&TigerConfig { seed: 1, scale: 0.2 });
        assert!(large.roads.len() > 2 * small.roads.len());
        assert!(large.pointlm.len() > 2 * small.pointlm.len());
    }

    #[test]
    fn everything_within_extent_envelope() {
        let d = small();
        let fat = EXTENT.expanded_by(0.5);
        for r in &d.roads {
            assert!(fat.contains_envelope(&r.geom.envelope()), "road {} escapes", r.id);
        }
        for a in &d.arealm {
            assert!(fat.contains_envelope(&a.geom.envelope()));
        }
        for w in &d.areawater {
            assert!(fat.contains_envelope(&w.geom.envelope()));
        }
    }

    #[test]
    fn counties_tile_the_extent() {
        let d = small();
        let total: f64 = d.counties.iter().map(|c| c.geom.area()).sum();
        let extent_area = EXTENT.area();
        assert!(
            (total - extent_area).abs() < extent_area * 0.01,
            "county areas {total} vs extent {extent_area}"
        );
    }

    #[test]
    fn adjacent_counties_share_boundaries_exactly() {
        use jackpine_topo::touches;
        // Use a grid of at least 3×3 so "far" counties exist.
        let d = TigerDataset::generate(&TigerConfig { seed: 42, scale: 0.2 });
        let grid = (d.counties.len() as f64).sqrt() as usize;
        assert!(grid >= 3, "scale 0.2 should give at least a 3×3 county grid");
        // County 0 and county 1 are horizontal neighbours.
        let a = d.counties[0].geometry();
        let b = d.counties[1].geometry();
        assert!(touches(&a, &b).unwrap(), "neighbouring counties must touch");
        // Diagonal neighbours touch at the shared corner.
        let diag = d.counties[grid + 1].geometry();
        assert!(touches(&a, &diag).unwrap(), "diagonal counties share a corner");
        // A county two cells away shares nothing.
        let far = d.counties[2].geometry();
        assert!(!touches(&a, &far).unwrap());
    }

    #[test]
    fn roads_have_valid_address_ranges() {
        let d = small();
        assert!(!d.roads.is_empty());
        for r in d.roads.iter().take(200) {
            assert!(r.from_addr < r.to_addr);
            assert!(r.from_addr % 100 == 1);
            assert!(r.zip >= 75_000);
            assert!(r.geom.num_coords() >= 2);
        }
    }

    #[test]
    fn rivers_cross_many_counties() {
        let d = small();
        let river =
            d.areawater.iter().find(|w| w.name.ends_with("RIVER")).expect("at least one river");
        let crossed = d
            .counties
            .iter()
            .filter(|c| c.geom.envelope().intersects(&river.geom.envelope()))
            .count();
        let grid = (d.counties.len() as f64).sqrt() as usize;
        assert!(
            crossed >= grid,
            "river should span at least one county per column, got {crossed} of {grid}"
        );
        // Rivers are wide-extent, thin-height bands.
        let env = river.geom.envelope();
        assert!(env.width() > EXTENT.width() * 0.9);
    }

    #[test]
    fn landmark_names_and_categories() {
        let d = small();
        for a in d.arealm.iter().take(50) {
            assert!(!a.name.is_empty());
            assert!(!a.category.is_empty());
        }
        for p in d.pointlm.iter().take(50) {
            assert!(!p.name.is_empty());
        }
    }
}
