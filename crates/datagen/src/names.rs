//! Name pools for the synthetic TIGER tables.

/// Street base names, cycled with directional prefixes and type suffixes.
pub const STREET_NAMES: [&str; 40] = [
    "OAK",
    "ELM",
    "MAPLE",
    "CEDAR",
    "PINE",
    "WALNUT",
    "MAIN",
    "FIRST",
    "SECOND",
    "THIRD",
    "FOURTH",
    "FIFTH",
    "WASHINGTON",
    "JEFFERSON",
    "LINCOLN",
    "MADISON",
    "JACKSON",
    "FRANKLIN",
    "HOUSTON",
    "AUSTIN",
    "TRAVIS",
    "CROCKETT",
    "BOWIE",
    "LAMAR",
    "BRAZOS",
    "COLORADO",
    "PECAN",
    "MESQUITE",
    "JUNIPER",
    "WILLOW",
    "SYCAMORE",
    "MAGNOLIA",
    "CHERRY",
    "PEACH",
    "HICKORY",
    "RIVER",
    "LAKE",
    "HILL",
    "VALLEY",
    "PRAIRIE",
];

/// Street type suffixes.
pub const STREET_TYPES: [&str; 8] = ["ST", "AVE", "RD", "DR", "LN", "BLVD", "CT", "PKWY"];

/// Directional prefixes (empty = none).
pub const DIRECTIONS: [&str; 5] = ["", "N", "S", "E", "W"];

/// Area landmark categories with name stems.
pub const AREALM_KINDS: [(&str, &str); 8] = [
    ("PARK", "K22"),
    ("SCHOOL", "D43"),
    ("CEMETERY", "D82"),
    ("GOLF COURSE", "D81"),
    ("HOSPITAL", "D31"),
    ("AIRPORT", "D57"),
    ("SHOPPING CENTER", "D61"),
    ("UNIVERSITY", "D43"),
];

/// Point landmark categories.
pub const POINTLM_KINDS: [(&str, &str); 8] = [
    ("CHURCH", "D44"),
    ("TOWER", "D71"),
    ("FIRE STATION", "D65"),
    ("LIBRARY", "D37"),
    ("POST OFFICE", "D36"),
    ("CITY HALL", "D36"),
    ("MONUMENT", "D70"),
    ("WATER TANK", "D71"),
];

/// River name stems.
pub const RIVER_NAMES: [&str; 8] =
    ["TRINITY", "BRAZOS", "COLORADO", "GUADALUPE", "NUECES", "SABINE", "PECOS", "RED"];

/// Lake name stems.
pub const LAKE_NAMES: [&str; 8] =
    ["CLEAR", "CADDO", "TRAVIS", "WHITNEY", "LEWISVILLE", "CONROE", "FALCON", "AMISTAD"];

/// County name stems (cycled with a numeric suffix when exhausted).
pub const COUNTY_NAMES: [&str; 16] = [
    "HARRIS",
    "DALLAS",
    "TARRANT",
    "BEXAR",
    "TRAVIS",
    "COLLIN",
    "DENTON",
    "HIDALGO",
    "EL PASO",
    "FORT BEND",
    "MONTGOMERY",
    "WILLIAMSON",
    "CAMERON",
    "NUECES",
    "BELL",
    "GALVESTON",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        assert!(STREET_NAMES.len() >= 16);
        let mut sorted = STREET_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), STREET_NAMES.len(), "duplicate street names");
    }
}
