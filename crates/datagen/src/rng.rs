//! Seeded pseudo-random number generation for the dataset generator.
//!
//! A self-contained xoshiro256\*\* generator seeded through SplitMix64
//! (Blackman & Vigna's recommended seeding scheme), replacing the former
//! `rand::SmallRng` dependency so offline builds need no external
//! crates. Generation is fully deterministic by seed: the same seed and
//! scale always produce the same dataset, which the golden row-count
//! tests pin down.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (xoshiro256\*\*).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 significant bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value from a range; see [`SampleRange`] for supported
    /// range/element combinations. Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply-shift.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.bounded_u64(span) as i64)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample(self, rng: &mut Rng) -> i64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        if start == end {
            return start;
        }
        let span = end.wrapping_sub(start) as u64;
        // span + 1 cannot overflow here: start < end bounds span < u64::MAX.
        start.wrapping_add(rng.bounded_u64(span + 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range(3..9usize);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let ii = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&ii));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2i64) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(9);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = Rng::seed_from_u64(1234);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
