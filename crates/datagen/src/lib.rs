//! # jackpine-datagen
//!
//! Deterministic synthetic stand-in for the TIGER/Line data the Jackpine
//! paper loaded (roads/edges, area landmarks, point landmarks, area
//! water, county boundaries for a US state).
//!
//! The generator reproduces the *statistical shape* that matters to the
//! benchmark rather than real geography:
//!
//! * a state-sized extent divided into counties whose boundaries are
//!   **exactly shared** between neighbours (so `Touches` queries have
//!   non-trivial answers),
//! * per-county street grids of named roads with address ranges and zip
//!   codes (the geocoding scenarios' raw material),
//! * clustered polygonal landmarks and water bodies, including long
//!   river bands crossing many counties (flood-risk analysis),
//! * point landmarks.
//!
//! Everything is seeded: the same [`TigerConfig`] always produces the
//! same dataset, which keeps benchmark runs comparable across engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod names;
pub mod rng;
mod tiger;

pub use tiger::{
    AreaLandmark, AreaWater, County, PointLandmark, Road, TigerConfig, TigerDataset, EXTENT,
};
