//! The named topological predicates of the OGC Simple Features standard,
//! defined as DE-9IM pattern matches — exactly the relations Jackpine's
//! topological micro benchmark queries.

use crate::matrix::IntersectionMatrix;
use crate::{relate, Result};
use jackpine_geom::{Dimension, Geometry};

/// The ten named predicates, as data — so callers (the SQL layer, the
/// prepared-geometry evaluator) can route a predicate by value instead
/// of by function pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredicateKind {
    /// [`equals`]
    Equals,
    /// [`disjoint`]
    Disjoint,
    /// [`intersects`]
    Intersects,
    /// [`touches`]
    Touches,
    /// [`crosses`]
    Crosses,
    /// [`within`]
    Within,
    /// [`contains`]
    Contains,
    /// [`overlaps`]
    Overlaps,
    /// [`covers`]
    Covers,
    /// [`covered_by`]
    CoveredBy,
}

impl PredicateKind {
    /// Map an upper-cased SQL function name (`ST_INTERSECTS`, …) to its
    /// predicate kind. Returns `None` for non-topological functions.
    pub fn from_sql_name(upper: &str) -> Option<PredicateKind> {
        Some(match upper {
            "ST_EQUALS" => PredicateKind::Equals,
            "ST_DISJOINT" => PredicateKind::Disjoint,
            "ST_INTERSECTS" => PredicateKind::Intersects,
            "ST_TOUCHES" => PredicateKind::Touches,
            "ST_CROSSES" => PredicateKind::Crosses,
            "ST_WITHIN" => PredicateKind::Within,
            "ST_CONTAINS" => PredicateKind::Contains,
            "ST_OVERLAPS" => PredicateKind::Overlaps,
            "ST_COVERS" => PredicateKind::Covers,
            "ST_COVEREDBY" => PredicateKind::CoveredBy,
            _ => return None,
        })
    }
}

/// Evaluate a named predicate against an already-computed DE-9IM matrix
/// for operands of dimensions `da` × `db`. This is the single pattern
/// table shared by the naive wrappers below and the prepared path, so
/// the two can never drift.
pub(crate) fn eval_matrix(
    kind: PredicateKind,
    m: &IntersectionMatrix,
    da: Dimension,
    db: Dimension,
) -> Result<bool> {
    match kind {
        PredicateKind::Equals => m.matches("T*F**FFF*"),
        PredicateKind::Disjoint => m.matches("FF*FF****"),
        PredicateKind::Intersects => Ok(!m.matches("FF*FF****")?),
        PredicateKind::Touches => {
            Ok(m.matches("FT*******")? || m.matches("F**T*****")? || m.matches("F***T****")?)
        }
        PredicateKind::Crosses => {
            if da < db {
                m.matches("T*T******")
            } else if da > db {
                m.matches("T*****T**")
            } else if da == Dimension::One && db == Dimension::One {
                m.matches("0********")
            } else {
                Ok(false)
            }
        }
        PredicateKind::Within => m.matches("T*F**F***"),
        PredicateKind::Contains => eval_matrix(PredicateKind::Within, &m.transposed(), db, da),
        PredicateKind::Overlaps => {
            if da != db {
                return Ok(false);
            }
            match da {
                Dimension::Zero | Dimension::Two => m.matches("T*T***T**"),
                Dimension::One => m.matches("1*T***T**"),
                _ => Ok(false),
            }
        }
        PredicateKind::Covers => Ok(m.matches("T*****FF*")?
            || m.matches("*T****FF*")?
            || m.matches("***T**FF*")?
            || m.matches("****T*FF*")?),
        PredicateKind::CoveredBy => eval_matrix(PredicateKind::Covers, &m.transposed(), db, da),
    }
}

fn eval(kind: PredicateKind, a: &Geometry, b: &Geometry) -> Result<bool> {
    eval_matrix(kind, &relate(a, b)?, a.dimension(), b.dimension())
}

/// `a` and `b` are topologically equal (same point set): `T*F**FFF*`.
pub fn equals(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Equals, a, b)
}

/// `a` and `b` share no point: `FF*FF****`.
pub fn disjoint(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Disjoint, a, b)
}

/// `a` and `b` share at least one point (negation of [`disjoint`]).
pub fn intersects(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Intersects, a, b)
}

/// `a` touches `b`: they intersect, but only at boundaries
/// (`FT*******`, `F**T*****` or `F***T****`).
pub fn touches(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Touches, a, b)
}

/// `a` crosses `b`: interiors intersect in a lower dimension than the
/// operands allow.
pub fn crosses(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Crosses, a, b)
}

/// `a` lies within `b`: `T*F**F***`.
pub fn within(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Within, a, b)
}

/// `a` contains `b` (transpose of [`within`]).
pub fn contains(a: &Geometry, b: &Geometry) -> Result<bool> {
    within(b, a)
}

/// `a` overlaps `b`: same dimension, interiors intersect, and each has
/// interior points the other lacks.
pub fn overlaps(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Overlaps, a, b)
}

/// `a` covers `b`: every point of `b` is a point of `a`.
pub fn covers(a: &Geometry, b: &Geometry) -> Result<bool> {
    eval(PredicateKind::Covers, a, b)
}

/// `a` is covered by `b` (transpose of [`covers`]).
pub fn covered_by(a: &Geometry, b: &Geometry) -> Result<bool> {
    covers(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;

    fn g(w: &str) -> Geometry {
        wkt::parse(w).unwrap()
    }

    const SQ: &str = "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))";
    const SQ_SHIFT: &str = "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))";
    const SQ_FAR: &str = "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))";
    const SQ_INNER: &str = "POLYGON ((0.5 0.5, 1.5 0.5, 1.5 1.5, 0.5 1.5, 0.5 0.5))";
    const SQ_EDGE: &str = "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))";

    #[test]
    fn equals_pred() {
        assert!(equals(&g(SQ), &g(SQ)).unwrap());
        // Same region, different vertex order/start.
        assert!(equals(&g(SQ), &g("POLYGON ((2 0, 2 2, 0 2, 0 0, 2 0))")).unwrap());
        assert!(!equals(&g(SQ), &g(SQ_SHIFT)).unwrap());
        assert!(equals(&g("LINESTRING (0 0, 2 0)"), &g("LINESTRING (2 0, 0 0)")).unwrap());
        // Same line with an extra interior vertex.
        assert!(equals(&g("LINESTRING (0 0, 2 0)"), &g("LINESTRING (0 0, 1 0, 2 0)")).unwrap());
    }

    #[test]
    fn disjoint_and_intersects() {
        assert!(disjoint(&g(SQ), &g(SQ_FAR)).unwrap());
        assert!(!disjoint(&g(SQ), &g(SQ_SHIFT)).unwrap());
        assert!(intersects(&g(SQ), &g(SQ_SHIFT)).unwrap());
        assert!(intersects(&g(SQ), &g(SQ_EDGE)).unwrap()); // edge touch
    }

    #[test]
    fn touches_pred() {
        assert!(touches(&g(SQ), &g(SQ_EDGE)).unwrap());
        assert!(!touches(&g(SQ), &g(SQ_SHIFT)).unwrap()); // overlap, not touch
        assert!(!touches(&g(SQ), &g(SQ_FAR)).unwrap());
        // Point on polygon boundary touches; inside does not.
        assert!(touches(&g("POINT (2 1)"), &g(SQ)).unwrap());
        assert!(!touches(&g("POINT (1 1)"), &g(SQ)).unwrap());
        // Lines meeting end-to-end.
        assert!(touches(&g("LINESTRING (0 0, 1 0)"), &g("LINESTRING (1 0, 2 0)")).unwrap());
    }

    #[test]
    fn crosses_pred() {
        assert!(crosses(&g("LINESTRING (0 0, 2 2)"), &g("LINESTRING (0 2, 2 0)")).unwrap());
        assert!(crosses(&g("LINESTRING (-1 1, 3 1)"), &g(SQ)).unwrap());
        // A line fully inside does not cross.
        assert!(!crosses(&g("LINESTRING (0.5 1, 1.5 1)"), &g(SQ)).unwrap());
        // Touching lines do not cross.
        assert!(!crosses(&g("LINESTRING (0 0, 1 0)"), &g("LINESTRING (1 0, 2 0)")).unwrap());
        // Multipoint crossing a polygon: some in, some out.
        assert!(crosses(&g("MULTIPOINT ((1 1), (9 9))"), &g(SQ)).unwrap());
    }

    #[test]
    fn within_contains() {
        assert!(within(&g(SQ_INNER), &g(SQ)).unwrap());
        assert!(contains(&g(SQ), &g(SQ_INNER)).unwrap());
        assert!(!within(&g(SQ), &g(SQ_INNER)).unwrap());
        assert!(within(&g("POINT (1 1)"), &g(SQ)).unwrap());
        // A point on the boundary is NOT within (but is covered by).
        assert!(!within(&g("POINT (2 1)"), &g(SQ)).unwrap());
        assert!(covered_by(&g("POINT (2 1)"), &g(SQ)).unwrap());
        assert!(covers(&g(SQ), &g("POINT (2 1)")).unwrap());
    }

    #[test]
    fn overlaps_pred() {
        assert!(overlaps(&g(SQ), &g(SQ_SHIFT)).unwrap());
        assert!(!overlaps(&g(SQ), &g(SQ_INNER)).unwrap()); // containment
        assert!(!overlaps(&g(SQ), &g(SQ_EDGE)).unwrap()); // touch
        assert!(!overlaps(&g(SQ), &g(SQ)).unwrap()); // equal
                                                     // Collinear partially overlapping lines.
        assert!(overlaps(&g("LINESTRING (0 0, 2 0)"), &g("LINESTRING (1 0, 3 0)")).unwrap());
        // Crossing lines do not overlap (dim-0 intersection).
        assert!(!overlaps(&g("LINESTRING (0 0, 2 2)"), &g("LINESTRING (0 2, 2 0)")).unwrap());
        // Point sets sharing some but not all members.
        assert!(overlaps(&g("MULTIPOINT ((0 0), (1 1))"), &g("MULTIPOINT ((1 1), (2 2))")).unwrap());
    }

    #[test]
    fn covers_vs_contains_boundary_case() {
        // A polygon covers a line on its boundary but does not contain it.
        let edge_line = g("LINESTRING (0.5 0, 1.5 0)");
        assert!(covers(&g(SQ), &edge_line).unwrap());
        assert!(!contains(&g(SQ), &edge_line).unwrap());
    }

    #[test]
    fn predicate_consistency_within_implies_covered_by() {
        let pairs = [(SQ_INNER, SQ), ("POINT (1 1)", SQ), ("LINESTRING (0.5 1, 1.5 1)", SQ)];
        for (a, b) in pairs {
            assert!(within(&g(a), &g(b)).unwrap(), "{a} within {b}");
            assert!(covered_by(&g(a), &g(b)).unwrap(), "{a} coveredBy {b}");
            assert!(contains(&g(b), &g(a)).unwrap(), "{b} contains {a}");
        }
    }
}
