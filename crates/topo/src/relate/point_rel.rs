//! DE-9IM computation where the first operand is a point set.

use super::shape::{coord_on_lines, LineSet};
use crate::matrix::{IntersectionMatrix, Position};
use jackpine_geom::algorithms::locate::Location;
use jackpine_geom::algorithms::segment::point_in_segment_interior;
use jackpine_geom::{Coord, Dimension, Polygon};

/// Matrix of two finite point sets. Point sets have empty boundaries, so
/// only the interior/exterior rows and columns are populated.
pub fn points_points(a: &[Coord], b: &[Coord]) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);
    for &p in a {
        if b.contains(&p) {
            m.set_at_least(Position::Interior, Position::Interior, Dimension::Zero);
        } else {
            m.set_at_least(Position::Interior, Position::Exterior, Dimension::Zero);
        }
    }
    for &q in b {
        if !a.contains(&q) {
            m.set_at_least(Position::Exterior, Position::Interior, Dimension::Zero);
        }
    }
    m
}

/// Matrix of a point set against a curve set.
pub fn points_lines(pts: &[Coord], ls: &LineSet) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);
    // The curve interior always extends beyond finitely many points.
    m.set(Position::Exterior, Position::Interior, Dimension::One);

    for &p in pts {
        if ls.boundary.contains(&p) {
            m.set_at_least(Position::Interior, Position::Boundary, Dimension::Zero);
        } else if on_lines_interior(p, ls) {
            m.set_at_least(Position::Interior, Position::Interior, Dimension::Zero);
        } else {
            m.set_at_least(Position::Interior, Position::Exterior, Dimension::Zero);
        }
    }
    for &e in &ls.boundary {
        if !pts.contains(&e) {
            m.set_at_least(Position::Exterior, Position::Boundary, Dimension::Zero);
        }
    }
    m
}

/// `true` when `p` lies on the curve set but not in its mod-2 boundary —
/// i.e., in the curve set's interior.
fn on_lines_interior(p: Coord, ls: &LineSet) -> bool {
    if ls.boundary.contains(&p) {
        return false;
    }
    // Interior vertices and interior-of-segment points both qualify; an
    // endpoint shared by an even number of curves also does (mod-2 rule).
    coord_on_lines(p, &ls.lines)
        || ls.lines.iter().any(|l| l.segments().any(|(a, b)| point_in_segment_interior(p, a, b)))
}

/// Matrix of a point set against a polygon set.
pub fn points_areas(pts: &[Coord], areas: &[Polygon]) -> IntersectionMatrix {
    points_areas_ix(pts, &super::shape::NaiveAreas(areas))
}

/// [`points_areas`] over a candidate-filtered areal source.
pub(crate) fn points_areas_ix(
    pts: &[Coord],
    areas: &dyn super::shape::AreaOps,
) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);
    m.set(Position::Exterior, Position::Interior, Dimension::Two);
    m.set(Position::Exterior, Position::Boundary, Dimension::One);

    for &p in pts {
        let cell = match areas.locate(p) {
            Location::Interior => Position::Interior,
            Location::Boundary => Position::Boundary,
            Location::Exterior => Position::Exterior,
        };
        m.set_at_least(Position::Interior, cell, Dimension::Zero);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::LineString;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn points_points_cells() {
        let m = points_points(&[c(0.0, 0.0), c(1.0, 1.0)], &[c(1.0, 1.0), c(2.0, 2.0)]);
        assert_eq!(m.to_string(), "0F0FFF0F2");
    }

    #[test]
    fn point_in_line_set_interior_via_even_junction() {
        // Two curves meeting at (1,0): the junction is interior (mod-2).
        let a = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0)]).unwrap();
        let b = LineString::from_xy(&[(1.0, 0.0), (2.0, 0.0)]).unwrap();
        let ls = LineSet {
            boundary: super::super::shape::mod2_boundary(&[a.clone(), b.clone()]),
            lines: vec![a, b],
        };
        let m = points_lines(&[c(1.0, 0.0)], &ls);
        assert_eq!(m.get(Position::Interior, Position::Interior), Dimension::Zero);
        assert_eq!(m.get(Position::Interior, Position::Boundary), Dimension::Empty);
    }

    #[test]
    fn points_areas_all_three_cells() {
        let p = Polygon::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]).unwrap();
        let m = points_areas(&[c(1.0, 1.0), c(2.0, 1.0), c(9.0, 9.0)], &[p]);
        assert_eq!(m.to_string(), "000FFF212");
    }
}
