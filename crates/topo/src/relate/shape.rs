//! Decomposition of geometries into the three dimension families the
//! relate algorithms operate on, plus shared point-set helpers.

use crate::{Result, TopoError};
use jackpine_geom::algorithms::line_split::LinePortion;
use jackpine_geom::algorithms::locate::{locate_in_polygon, Location};
use jackpine_geom::algorithms::segment::point_on_segment;
use jackpine_geom::{Coord, Envelope, Geometry, LineString, Polygon};

/// A set of linestrings together with its combinatorial (mod-2) boundary.
#[derive(Debug)]
pub struct LineSet {
    /// The member curves (all non-empty).
    pub lines: Vec<LineString>,
    /// Endpoints occurring an odd number of times across the members.
    pub boundary: Vec<Coord>,
}

/// A geometry reduced to its dimension family.
#[derive(Debug)]
pub enum Shape {
    /// No point at all.
    Empty,
    /// A finite point set.
    Points(Vec<Coord>),
    /// A set of curves.
    Lines(LineSet),
    /// A set of polygons with pairwise disjoint interiors.
    Areas(Vec<Polygon>),
}

/// Flattens `g` into one dimension family.
pub fn decompose(g: &Geometry) -> Result<Shape> {
    let mut pts: Vec<Coord> = Vec::new();
    let mut lines: Vec<LineString> = Vec::new();
    let mut areas: Vec<Polygon> = Vec::new();
    collect(g, &mut pts, &mut lines, &mut areas);

    match (!pts.is_empty(), !lines.is_empty(), !areas.is_empty()) {
        (false, false, false) => Ok(Shape::Empty),
        (true, false, false) => {
            pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
            pts.dedup();
            Ok(Shape::Points(pts))
        }
        (false, true, false) => {
            let boundary = mod2_boundary(&lines);
            Ok(Shape::Lines(LineSet { lines, boundary }))
        }
        (false, false, true) => Ok(Shape::Areas(areas)),
        _ => Err(TopoError::Unsupported("geometry collection mixes dimension families".into())),
    }
}

fn collect(
    g: &Geometry,
    pts: &mut Vec<Coord>,
    lines: &mut Vec<LineString>,
    areas: &mut Vec<Polygon>,
) {
    match g {
        Geometry::Point(p) => pts.extend(p.coord()),
        Geometry::MultiPoint(m) => pts.extend(m.0.iter().filter_map(|p| p.coord())),
        Geometry::LineString(l) => {
            if !l.is_empty() {
                lines.push(l.clone());
            }
        }
        Geometry::MultiLineString(m) => {
            lines.extend(m.0.iter().filter(|l| !l.is_empty()).cloned());
        }
        Geometry::Polygon(p) => areas.push(p.clone()),
        Geometry::MultiPolygon(m) => areas.extend(m.0.iter().cloned()),
        Geometry::GeometryCollection(c) => {
            for g in &c.0 {
                collect(g, pts, lines, areas);
            }
        }
    }
}

/// The mod-2 boundary of a curve set: endpoints terminating an odd number
/// of member curves. Closed curves contribute nothing.
pub fn mod2_boundary(lines: &[LineString]) -> Vec<Coord> {
    let mut counts: Vec<(Coord, usize)> = Vec::new();
    for l in lines {
        if l.is_closed() || l.is_empty() {
            continue;
        }
        for c in [l.start(), l.end()].into_iter().flatten() {
            match counts.iter_mut().find(|(k, _)| *k == c) {
                Some(e) => e.1 += 1,
                None => counts.push((c, 1)),
            }
        }
    }
    counts.into_iter().filter(|&(_, n)| n % 2 == 1).map(|(c, _)| c).collect()
}

/// `true` when `c` lies on any segment of the curve set.
pub fn coord_on_lines(c: Coord, lines: &[LineString]) -> bool {
    lines.iter().any(|l| l.segments().any(|(a, b)| point_on_segment(c, a, b)))
}

/// Candidate-filtered access to a curve set's segments.
///
/// The relate kernels are written against this trait so the naive path
/// (every segment is always a candidate) and the prepared path (chain
/// indexes) run the *same* matrix logic. An implementation must yield a
/// **superset** of the segments whose envelope intersects `qenv`; extra
/// segments are harmless because the exact per-pair predicates classify
/// envelope-disjoint pairs as non-interacting.
pub(crate) trait CurveIndex {
    /// The underlying curve set.
    fn line_set(&self) -> &LineSet;
    /// Calls `f` with every candidate segment for the query window.
    fn candidates(&self, qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord));
}

/// The unindexed curve source: every segment is always a candidate.
pub(crate) struct NaiveCurves<'a>(pub &'a LineSet);

impl CurveIndex for NaiveCurves<'_> {
    fn line_set(&self) -> &LineSet {
        self.0
    }
    fn candidates(&self, _qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord)) {
        for l in &self.0.lines {
            for (a, b) in l.segments() {
                f(a, b);
            }
        }
    }
}

/// Candidate-filtered access to a polygon set (pairwise disjoint
/// interiors), mirroring [`CurveIndex`] for the areal kernels. `split`
/// and `locate` must be bit-identical to [`split_line_by_areas`] and
/// [`locate_in_areas`]; `probe` must be bit-identical to
/// [`interior_point`] of the `i`-th member (caching is fine — the
/// function is deterministic).
pub(crate) trait AreaOps {
    /// Number of member polygons.
    fn len(&self) -> usize;
    /// The `i`-th member polygon.
    fn polygon(&self, i: usize) -> &Polygon;
    /// Splits `line` by the whole set's boundary.
    fn split(&self, line: &LineString) -> Vec<LinePortion>;
    /// Locates `c` against the whole set.
    fn locate(&self, c: Coord) -> Location;
    /// An interior point of the `i`-th member.
    fn probe(&self, i: usize) -> Coord;
}

/// The unindexed polygon source.
pub(crate) struct NaiveAreas<'a>(pub &'a [Polygon]);

impl AreaOps for NaiveAreas<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn polygon(&self, i: usize) -> &Polygon {
        &self.0[i]
    }
    fn split(&self, line: &LineString) -> Vec<LinePortion> {
        split_line_by_areas(line, self.0)
    }
    fn locate(&self, c: Coord) -> Location {
        locate_in_areas(c, self.0)
    }
    fn probe(&self, i: usize) -> Coord {
        interior_point(&self.0[i])
    }
}

/// Locates `c` relative to a polygon set with pairwise disjoint interiors:
/// interior of any member wins, then boundary of any member.
pub fn locate_in_areas(c: Coord, areas: &[Polygon]) -> Location {
    let mut on_boundary = false;
    for p in areas {
        match locate_in_polygon(c, p) {
            Location::Interior => return Location::Interior,
            Location::Boundary => on_boundary = true,
            Location::Exterior => {}
        }
    }
    if on_boundary {
        Location::Boundary
    } else {
        Location::Exterior
    }
}

/// A point strictly inside the polygon, found by scanning horizontal lines
/// through the envelope and probing span midpoints.
///
/// Valid polygons always enclose area, so the scan terminates; the function
/// panics only on geometry violating the `Polygon` construction invariants.
pub fn interior_point(poly: &Polygon) -> Coord {
    let env = poly.envelope();
    // Try a few scanlines; midheight first, then golden-ratio offsets.
    let fractions = [0.5, 0.381966, 0.618034, 0.25, 0.75, 0.1, 0.9, 0.05, 0.95];
    for f in fractions {
        let y = env.min_y + env.height() * f;
        let mut xs: Vec<f64> = Vec::new();
        for ring in poly.rings() {
            for (a, b) in ring.segments() {
                // Half-open rule to avoid double counting vertices.
                let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
                if lo.y <= y && hi.y > y {
                    let t = (y - lo.y) / (hi.y - lo.y);
                    xs.push(lo.x + t * (hi.x - lo.x));
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        for w in xs.windows(2) {
            let mid = Coord::new((w[0] + w[1]) * 0.5, y);
            if locate_in_polygon(mid, poly) == Location::Interior {
                return mid;
            }
        }
    }
    // Last resort: centroid-like fallback (valid for convex polygons).
    let c = poly.exterior().coords();
    let mut acc = Coord::new(0.0, 0.0);
    for p in &c[..c.len() - 1] {
        acc = acc + *p;
    }
    acc * (1.0 / (c.len() - 1) as f64)
}

/// Splits `line` by every polygon of a disjoint-interior set; a piece is
/// `Inside` if inside any member, `OnBoundary` if along any member's
/// boundary, `Outside` otherwise.
pub fn split_line_by_areas(
    line: &LineString,
    areas: &[Polygon],
) -> Vec<jackpine_geom::algorithms::line_split::LinePortion> {
    use jackpine_geom::algorithms::line_split::split_line_by_polygon;
    split_line_by_areas_with(line, areas.len(), &mut |i, piece| {
        split_line_by_polygon(piece, &areas[i])
    })
}

/// The member-by-member splitting loop behind [`split_line_by_areas`],
/// parameterized over the per-polygon splitter so the prepared path can
/// substitute its indexed one. `split_one(i, piece)` must behave like
/// `split_line_by_polygon(piece, &areas[i])`.
pub(crate) fn split_line_by_areas_with(
    line: &LineString,
    n_polys: usize,
    split_one: &mut dyn FnMut(usize, &LineString) -> Vec<LinePortion>,
) -> Vec<LinePortion> {
    use jackpine_geom::algorithms::line_split::PortionClass;

    let mut resolved: Vec<LinePortion> = Vec::new();
    let mut pending: Vec<LineString> = vec![line.clone()];
    for i in 0..n_polys {
        let mut still_outside: Vec<LineString> = Vec::new();
        for piece in pending {
            for portion in split_one(i, &piece) {
                match portion.class {
                    PortionClass::Inside | PortionClass::OnBoundary => resolved.push(portion),
                    PortionClass::Outside => {
                        if let Ok(l) = LineString::new(portion.coords) {
                            still_outside.push(l);
                        }
                    }
                }
            }
        }
        pending = still_outside;
        if pending.is_empty() {
            break;
        }
    }
    for piece in pending {
        resolved.push(LinePortion { class: PortionClass::Outside, coords: piece.coords().to_vec() })
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;

    #[test]
    fn decompose_families() {
        let g = wkt::parse("MULTIPOINT ((0 0), (1 1), (0 0))").unwrap();
        match decompose(&g).unwrap() {
            Shape::Points(p) => assert_eq!(p.len(), 2), // deduplicated
            other => panic!("expected points, got {other:?}"),
        }
        let g = wkt::parse("GEOMETRYCOLLECTION EMPTY").unwrap();
        assert!(matches!(decompose(&g).unwrap(), Shape::Empty));
        let g = wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        assert!(matches!(decompose(&g).unwrap(), Shape::Areas(_)));
    }

    #[test]
    fn mod2_boundary_rules() {
        let a = LineString::from_xy(&[(0.0, 0.0), (1.0, 0.0)]).unwrap();
        let b = LineString::from_xy(&[(1.0, 0.0), (2.0, 0.0)]).unwrap();
        let c = LineString::from_xy(&[(1.0, 0.0), (1.0, 1.0)]).unwrap();
        // Two lines meeting at (1,0): that point is not a boundary.
        let bd = mod2_boundary(&[a.clone(), b.clone()]);
        assert_eq!(bd.len(), 2);
        assert!(!bd.contains(&Coord::new(1.0, 0.0)));
        // Three lines meeting at (1,0): odd count, so it is.
        let bd = mod2_boundary(&[a, b, c]);
        assert!(bd.contains(&Coord::new(1.0, 0.0)));
    }

    #[test]
    fn interior_point_is_interior() {
        use jackpine_geom::algorithms::locate::{locate_in_polygon, Location};
        let cases = [
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
            // Concave "U" shape.
            "POLYGON ((0 0, 6 0, 6 6, 4 6, 4 2, 2 2, 2 6, 0 6, 0 0))",
            // Donut: the scanline at mid-height passes through the hole.
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))",
            // Thin sliver triangle.
            "POLYGON ((0 0, 10 0, 10 0.001, 0 0))",
        ];
        for c in cases {
            let g = wkt::parse(c).unwrap();
            let p = match g {
                Geometry::Polygon(p) => p,
                _ => unreachable!(),
            };
            let ip = interior_point(&p);
            assert_eq!(locate_in_polygon(ip, &p), Location::Interior, "for {c}");
        }
    }

    #[test]
    fn split_by_multiple_areas() {
        use jackpine_geom::algorithms::line_split::PortionClass;
        let a = match wkt::parse("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap() {
            Geometry::Polygon(p) => p,
            _ => unreachable!(),
        };
        let b = match wkt::parse("POLYGON ((4 0, 6 0, 6 2, 4 2, 4 0))").unwrap() {
            Geometry::Polygon(p) => p,
            _ => unreachable!(),
        };
        let line = LineString::from_xy(&[(-1.0, 1.0), (7.0, 1.0)]).unwrap();
        let portions = split_line_by_areas(&line, &[a, b]);
        let inside_len: f64 =
            portions.iter().filter(|p| p.class == PortionClass::Inside).map(|p| p.length()).sum();
        let outside_len: f64 =
            portions.iter().filter(|p| p.class == PortionClass::Outside).map(|p| p.length()).sum();
        assert!((inside_len - 4.0).abs() < 1e-9, "inside = {inside_len}");
        assert!((outside_len - 4.0).abs() < 1e-9, "outside = {outside_len}");
    }
}
