//! DE-9IM computation for areal × areal operands.
//!
//! Strategy: each ring of each operand is split against the *other*
//! polygon set (reusing the line-splitting machinery), which yields the
//! boundary rows directly; the interior cells are then derived from the
//! boundary observations plus interior-point probes, per the containment
//! arguments documented inline.

use super::shape::{AreaOps, NaiveAreas};
use crate::matrix::{IntersectionMatrix, Position};
use jackpine_geom::algorithms::line_split::PortionClass;
use jackpine_geom::algorithms::locate::Location;
use jackpine_geom::{Dimension, Polygon};

/// Per-operand boundary observations against the other operand.
#[derive(Default, Debug)]
struct BoundaryObs {
    /// Some boundary portion runs strictly inside the other.
    inside: bool,
    /// Some boundary portion runs along the other's boundary.
    on_boundary_dim1: bool,
    /// Some isolated boundary point lies on the other's boundary.
    on_boundary_dim0: bool,
    /// Some boundary portion runs strictly outside the other.
    outside: bool,
}

fn observe(subject: &dyn AreaOps, other: &dyn AreaOps) -> BoundaryObs {
    let mut obs = BoundaryObs::default();
    for pi in 0..subject.len() {
        for ring in subject.polygon(pi).rings() {
            let line = ring.to_linestring();
            for portion in other.split(&line) {
                match portion.class {
                    PortionClass::Inside => obs.inside = true,
                    PortionClass::OnBoundary => obs.on_boundary_dim1 = true,
                    PortionClass::Outside => obs.outside = true,
                }
                if !obs.on_boundary_dim0 {
                    for &c in &portion.coords {
                        if other.locate(c) == Location::Boundary {
                            obs.on_boundary_dim0 = true;
                            break;
                        }
                    }
                }
            }
        }
    }
    obs
}

/// Matrix of two polygon sets (each with pairwise disjoint interiors).
pub fn areas_areas(a: &[Polygon], b: &[Polygon]) -> IntersectionMatrix {
    areas_areas_ix(&NaiveAreas(a), &NaiveAreas(b))
}

/// [`areas_areas`] over candidate-filtered sources.
pub(crate) fn areas_areas_ix(a: &dyn AreaOps, b: &dyn AreaOps) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);

    let oa = observe(a, b); // A's boundary against B
    let ob = observe(b, a); // B's boundary against A

    // Boundary rows, read straight off the observations.
    if oa.inside {
        m.set(Position::Boundary, Position::Interior, Dimension::One);
    }
    if oa.outside {
        m.set(Position::Boundary, Position::Exterior, Dimension::One);
    }
    if ob.inside {
        m.set(Position::Interior, Position::Boundary, Dimension::One);
    }
    if ob.outside {
        m.set(Position::Exterior, Position::Boundary, Dimension::One);
    }
    if oa.on_boundary_dim1 || ob.on_boundary_dim1 {
        m.set(Position::Boundary, Position::Boundary, Dimension::One);
    } else if oa.on_boundary_dim0 || ob.on_boundary_dim0 {
        m.set(Position::Boundary, Position::Boundary, Dimension::Zero);
    }

    // Interior-point probes (each located against the whole other set).
    let a_probe_in_b = (0..a.len()).map(|i| b.locate(a.probe(i))).collect::<Vec<_>>();
    let b_probe_in_a = (0..b.len()).map(|i| a.locate(b.probe(i))).collect::<Vec<_>>();

    // Interior × interior: the interiors meet iff a boundary of one runs
    // through the interior of the other (an open set: any boundary point
    // inside it is a limit of interior-interior points), or some member's
    // interior point lies in the other's interior (covers containment and
    // exact equality, where no boundary crosses).
    let ii = oa.inside
        || ob.inside
        || a_probe_in_b.contains(&Location::Interior)
        || b_probe_in_a.contains(&Location::Interior);
    if ii {
        m.set(Position::Interior, Position::Interior, Dimension::Two);
    }

    // Interior × exterior: A's interior escapes B iff A's boundary runs
    // outside B, or B's boundary runs strictly inside A (so points of B's
    // exterior lie arbitrarily close inside A's interior), or some member
    // of A sits entirely in B's exterior (probe).
    let ie = oa.outside || ob.inside || a_probe_in_b.contains(&Location::Exterior);
    if ie {
        m.set(Position::Interior, Position::Exterior, Dimension::Two);
    }
    let ei = ob.outside || oa.inside || b_probe_in_a.contains(&Location::Exterior);
    if ei {
        m.set(Position::Exterior, Position::Interior, Dimension::Two);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x0: f64, y0: f64, s: f64) -> Polygon {
        Polygon::from_xy(&[(x0, y0), (x0 + s, y0), (x0 + s, y0 + s), (x0, y0 + s)]).unwrap()
    }

    #[test]
    fn observations_for_overlap() {
        let a = [sq(0.0, 0.0, 2.0)];
        let b = [sq(1.0, 1.0, 2.0)];
        let obs = observe(&NaiveAreas(&a), &NaiveAreas(&b));
        assert!(obs.inside);
        assert!(obs.outside);
        assert!(obs.on_boundary_dim0); // crossing points at (2,1) and (1,2)
        assert!(!obs.on_boundary_dim1);
    }

    #[test]
    fn multipolygon_against_band() {
        // Two squares, one inside the band, one outside.
        let parts = [sq(0.0, 0.0, 1.0), sq(5.0, 5.0, 1.0)];
        let band = [sq(-1.0, -1.0, 3.0)];
        let m = areas_areas(&parts, &band);
        // Interiors meet (first square), A escapes (second square), and
        // B's interior escapes A.
        assert_eq!(m.get(Position::Interior, Position::Interior), Dimension::Two);
        assert_eq!(m.get(Position::Interior, Position::Exterior), Dimension::Two);
        assert_eq!(m.get(Position::Exterior, Position::Interior), Dimension::Two);
    }

    #[test]
    fn equal_squares_have_clean_matrix() {
        let m = areas_areas(&[sq(0.0, 0.0, 2.0)], &[sq(0.0, 0.0, 2.0)]);
        assert_eq!(m.to_string(), "2FFF1FFF2");
    }
}
