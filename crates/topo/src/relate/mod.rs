//! DE-9IM matrix computation, organized by operand dimension pair.

pub(crate) mod line_rel;
pub(crate) mod point_rel;
pub(crate) mod poly_rel;
pub(crate) mod shape;

use crate::matrix::{IntersectionMatrix, Position};
use crate::Result;
use jackpine_geom::{Dimension, Geometry};
use shape::Shape;

pub use shape::interior_point;

/// Computes the DE-9IM intersection matrix of `a` against `b`.
///
/// Supported operands: all seven concrete geometry types; geometry
/// collections are accepted when their members are of a single dimension
/// family (all points, all lines or all polygons). Mixed collections
/// return [`crate::TopoError::Unsupported`].
pub fn relate(a: &Geometry, b: &Geometry) -> Result<IntersectionMatrix> {
    let sa = shape::decompose(a)?;
    let sb = shape::decompose(b)?;
    Ok(relate_shapes(&sa, &sb))
}

fn relate_shapes(a: &Shape, b: &Shape) -> IntersectionMatrix {
    match (a, b) {
        (Shape::Empty, _) => empty_vs(b),
        (_, Shape::Empty) => empty_vs(a).transposed(),
        (Shape::Points(pa), Shape::Points(pb)) => point_rel::points_points(pa, pb),
        (Shape::Points(p), Shape::Lines(l)) => point_rel::points_lines(p, l),
        (Shape::Lines(l), Shape::Points(p)) => point_rel::points_lines(p, l).transposed(),
        (Shape::Points(p), Shape::Areas(ar)) => point_rel::points_areas(p, ar),
        (Shape::Areas(ar), Shape::Points(p)) => point_rel::points_areas(p, ar).transposed(),
        (Shape::Lines(la), Shape::Lines(lb)) => line_rel::lines_lines(la, lb),
        (Shape::Lines(l), Shape::Areas(ar)) => line_rel::lines_areas(l, ar),
        (Shape::Areas(ar), Shape::Lines(l)) => line_rel::lines_areas(l, ar).transposed(),
        (Shape::Areas(aa), Shape::Areas(ab)) => poly_rel::areas_areas(aa, ab),
    }
}

/// The dimension-family facts [`empty_vs_family`] needs about the
/// non-empty operand — shared by the naive and prepared dispatchers.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FamilyKind {
    /// No point at all.
    Empty,
    /// A finite point set.
    Points,
    /// A curve set; `has_boundary` is false for purely closed curves.
    Lines {
        /// Whether the curve set's mod-2 boundary is non-empty.
        has_boundary: bool,
    },
    /// A polygon set.
    Areas,
}

impl Shape {
    pub(crate) fn family(&self) -> FamilyKind {
        match self {
            Shape::Empty => FamilyKind::Empty,
            Shape::Points(_) => FamilyKind::Points,
            Shape::Lines(l) => FamilyKind::Lines { has_boundary: !l.boundary.is_empty() },
            Shape::Areas(_) => FamilyKind::Areas,
        }
    }
}

/// Matrix for "empty geometry vs `other`": only the exterior row of the
/// empty operand can intersect anything.
fn empty_vs(other: &Shape) -> IntersectionMatrix {
    empty_vs_family(other.family())
}

pub(crate) fn empty_vs_family(other: FamilyKind) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);
    match other {
        FamilyKind::Empty => {}
        FamilyKind::Points => {
            m.set(Position::Exterior, Position::Interior, Dimension::Zero);
        }
        FamilyKind::Lines { has_boundary } => {
            m.set(Position::Exterior, Position::Interior, Dimension::One);
            if has_boundary {
                m.set(Position::Exterior, Position::Boundary, Dimension::Zero);
            }
        }
        FamilyKind::Areas => {
            m.set(Position::Exterior, Position::Interior, Dimension::Two);
            m.set(Position::Exterior, Position::Boundary, Dimension::One);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use jackpine_geom::wkt;

    fn rel(a: &str, b: &str) -> String {
        relate(&wkt::parse(a).unwrap(), &wkt::parse(b).unwrap()).unwrap().to_string()
    }

    // ------------------------------------------------------------------
    // Point / point
    // ------------------------------------------------------------------

    #[test]
    fn point_point_equal() {
        assert_eq!(rel("POINT (1 1)", "POINT (1 1)"), "0FFFFFFF2");
    }

    #[test]
    fn point_point_distinct() {
        assert_eq!(rel("POINT (1 1)", "POINT (2 2)"), "FF0FFF0F2");
    }

    #[test]
    fn multipoint_subset() {
        // A ⊂ B: no point of A outside B, but B has extras.
        assert_eq!(rel("POINT (1 1)", "MULTIPOINT ((1 1), (2 2))"), "0FFFFF0F2");
        assert_eq!(rel("MULTIPOINT ((1 1), (2 2))", "POINT (1 1)"), "0F0FFFFF2");
    }

    // ------------------------------------------------------------------
    // Point / line
    // ------------------------------------------------------------------

    #[test]
    fn point_on_line_interior() {
        // II=0; IE=F (point entirely on line); EI=1 (line interior extends
        // beyond); EB=0 (line endpoints not covered).
        assert_eq!(rel("POINT (1 0)", "LINESTRING (0 0, 2 0)"), "0FFFFF102");
    }

    #[test]
    fn point_at_line_endpoint_touches() {
        let m = rel("POINT (0 0)", "LINESTRING (0 0, 2 0)");
        // The point meets the line's *boundary*: I×B cell = 0, I×I empty.
        assert_eq!(m, "F0FFFF102");
    }

    #[test]
    fn point_off_line_disjoint() {
        assert_eq!(rel("POINT (5 5)", "LINESTRING (0 0, 2 0)"), "FF0FFF102");
    }

    // ------------------------------------------------------------------
    // Point / polygon
    // ------------------------------------------------------------------

    #[test]
    fn point_in_polygon_within() {
        assert_eq!(rel("POINT (1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"), "0FFFFF212");
    }

    #[test]
    fn point_on_polygon_boundary() {
        assert_eq!(rel("POINT (2 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"), "F0FFFF212");
    }

    #[test]
    fn point_outside_polygon() {
        assert_eq!(rel("POINT (9 9)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"), "FF0FFF212");
    }

    // ------------------------------------------------------------------
    // Line / line
    // ------------------------------------------------------------------

    #[test]
    fn crossing_lines() {
        assert_eq!(rel("LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)"), "0F1FF0102");
    }

    #[test]
    fn touching_lines_at_endpoints() {
        assert_eq!(rel("LINESTRING (0 0, 1 0)", "LINESTRING (1 0, 2 0)"), "FF1F00102");
    }

    #[test]
    fn equal_lines() {
        assert_eq!(rel("LINESTRING (0 0, 2 0)", "LINESTRING (0 0, 2 0)"), "1FFF0FFF2");
        // Also equal when traversed in reverse.
        assert_eq!(rel("LINESTRING (0 0, 2 0)", "LINESTRING (2 0, 0 0)"), "1FFF0FFF2");
    }

    #[test]
    fn overlapping_collinear_lines() {
        assert_eq!(rel("LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)"), "1010F0102");
    }

    #[test]
    fn line_within_line() {
        assert_eq!(rel("LINESTRING (1 0, 2 0)", "LINESTRING (0 0, 3 0)"), "1FF0FF102");
    }

    #[test]
    fn t_junction_lines() {
        // B's endpoint meets A's interior.
        assert_eq!(rel("LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 1 1)"), "F01FF0102");
    }

    #[test]
    fn disjoint_lines() {
        assert_eq!(rel("LINESTRING (0 0, 1 0)", "LINESTRING (5 5, 6 5)"), "FF1FF0102");
    }

    #[test]
    fn closed_line_has_no_boundary() {
        // A ring-shaped linestring: boundary row must be all F.
        let m = rel("LINESTRING (0 0, 1 0, 1 1, 0 0)", "LINESTRING (5 5, 6 5)");
        assert_eq!(m, "FF1FFF102");
    }

    // ------------------------------------------------------------------
    // Line / polygon
    // ------------------------------------------------------------------

    #[test]
    fn line_crossing_polygon() {
        assert_eq!(
            rel("LINESTRING (-1 1, 3 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "101FF0212"
        );
    }

    #[test]
    fn line_within_polygon() {
        assert_eq!(
            rel("LINESTRING (0.5 1, 1.5 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "1FF0FF212"
        );
    }

    #[test]
    fn line_touching_polygon_boundary() {
        // The line lies entirely along the polygon's bottom edge: its
        // interior meets only the boundary (IB=1), endpoints too (BB=0).
        assert_eq!(
            rel("LINESTRING (0.5 0, 1.5 0)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "F1FF0F212"
        );
    }

    #[test]
    fn line_disjoint_polygon() {
        assert_eq!(
            rel("LINESTRING (5 5, 6 6)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "FF1FF0212"
        );
    }

    #[test]
    fn line_ending_on_polygon_boundary_from_outside() {
        assert_eq!(
            rel("LINESTRING (3 1, 2 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "FF1F00212"
        );
    }

    #[test]
    fn line_entering_through_boundary_ending_inside() {
        assert_eq!(
            rel("LINESTRING (3 1, 1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "1010F0212"
        );
    }

    // ------------------------------------------------------------------
    // Polygon / polygon
    // ------------------------------------------------------------------

    #[test]
    fn equal_polygons() {
        assert_eq!(
            rel("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "2FFF1FFF2"
        );
    }

    #[test]
    fn overlapping_polygons() {
        assert_eq!(
            rel("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"),
            "212101212"
        );
    }

    #[test]
    fn disjoint_polygons() {
        assert_eq!(
            rel("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))"),
            "FF2FF1212"
        );
    }

    #[test]
    fn polygon_within_polygon() {
        assert_eq!(
            rel("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))", "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))"),
            "2FF1FF212"
        );
    }

    #[test]
    fn polygon_contains_polygon() {
        assert_eq!(
            rel("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"),
            "212FF1FF2"
        );
    }

    #[test]
    fn touching_polygons_share_edge() {
        assert_eq!(
            rel("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))"),
            "FF2F11212"
        );
    }

    #[test]
    fn touching_polygons_at_corner() {
        assert_eq!(
            rel("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"),
            "FF2F01212"
        );
    }

    #[test]
    fn polygon_in_hole_is_disjoint() {
        let donut = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))";
        let inner = "POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))";
        assert_eq!(rel(inner, donut), "FF2FF1212");
    }

    #[test]
    fn polygon_filling_hole_touches() {
        let donut = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))";
        let plug = "POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))";
        let m = rel(plug, donut);
        // Interiors disjoint, boundaries share the hole ring (dim 1).
        assert!(m.starts_with('F'), "II must be F, got {m}");
        assert_eq!(&m[4..5], "1"); // BB
    }

    // ------------------------------------------------------------------
    // Empty operands
    // ------------------------------------------------------------------

    #[test]
    fn empty_vs_polygon() {
        assert_eq!(rel("POINT EMPTY", "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"), "FFFFFF212");
        assert_eq!(rel("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POINT EMPTY"), "FF2FF1FF2");
        assert_eq!(rel("POINT EMPTY", "POINT EMPTY"), "FFFFFFFF2");
    }

    #[test]
    fn mixed_collection_unsupported() {
        let gc = wkt::parse("GEOMETRYCOLLECTION (POINT (0 0), LINESTRING (1 1, 2 2))").unwrap();
        let p = wkt::parse("POINT (0 0)").unwrap();
        assert!(relate(&gc, &p).is_err());
    }

    #[test]
    fn single_family_collection_supported() {
        let gc = wkt::parse("GEOMETRYCOLLECTION (POINT (1 1), POINT (2 2))").unwrap();
        let p = wkt::parse("POINT (1 1)").unwrap();
        let m = relate(&p, &gc).unwrap();
        assert_eq!(m.to_string(), "0FFFFF0F2");
    }

    // ------------------------------------------------------------------
    // Symmetry invariant
    // ------------------------------------------------------------------

    #[test]
    fn relate_is_transpose_symmetric() {
        let cases = [
            ("POINT (1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            ("LINESTRING (-1 1, 3 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            ("LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)"),
            ("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"),
            ("MULTIPOINT ((0 0), (3 3))", "LINESTRING (0 0, 2 0)"),
        ];
        for (a, b) in cases {
            let ga = wkt::parse(a).unwrap();
            let gb = wkt::parse(b).unwrap();
            let ab = relate(&ga, &gb).unwrap();
            let ba = relate(&gb, &ga).unwrap();
            assert_eq!(ab.transposed(), ba, "transpose symmetry failed for {a} / {b}");
        }
    }
}
