//! DE-9IM computation for curve operands (line/line and line/area).
//!
//! The kernels are written against the [`CurveIndex`] / [`AreaOps`]
//! traits so the naive path and the prepared (indexed) path execute the
//! same matrix logic; only candidate retrieval differs, and the indexes
//! only ever prune envelope-disjoint pairs, which the exact segment
//! predicates classify as non-interacting anyway.

use super::shape::{AreaOps, CurveIndex, LineSet, NaiveAreas, NaiveCurves};
use crate::matrix::{IntersectionMatrix, Position};
use jackpine_geom::algorithms::locate::Location;
use jackpine_geom::algorithms::segment::{
    point_on_segment, segment_intersection, SegmentIntersection,
};
use jackpine_geom::algorithms::tolerance::{param_on_segment, PARAM_EPS};
use jackpine_geom::{Coord, Dimension, Envelope, LineString, Polygon};

/// Matrix of two curve sets.
pub fn lines_lines(a: &LineSet, b: &LineSet) -> IntersectionMatrix {
    lines_lines_ix(&NaiveCurves(a), &NaiveCurves(b))
}

/// [`lines_lines`] over candidate-filtered curve sources.
pub(crate) fn lines_lines_ix(ia: &dyn CurveIndex, ib: &dyn CurveIndex) -> IntersectionMatrix {
    let (a, b) = (ia.line_set(), ib.line_set());
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);

    let mut shared_dim1 = false;
    let mut crossing_points: Vec<Coord> = Vec::new();
    let mut a_covered = true;
    let mut intervals: Vec<(f64, f64)> = Vec::new();

    for la in &a.lines {
        for (p, q) in la.segments() {
            intervals.clear();
            ib.candidates(&Envelope::from_coords([p, q].iter()), &mut |r, s| {
                match segment_intersection(p, q, r, s) {
                    SegmentIntersection::None => {}
                    SegmentIntersection::Point(x) => crossing_points.push(x),
                    SegmentIntersection::Overlap(x, y) => {
                        shared_dim1 = true;
                        intervals.push(interval(p, q, x, y));
                    }
                }
            });
            if !covers_unit(&mut intervals) {
                a_covered = false;
            }
        }
    }
    let b_covered = b.lines.iter().all(|l| curve_covered(l, ia));

    // Interior × interior.
    if shared_dim1 {
        m.set(Position::Interior, Position::Interior, Dimension::One);
    } else {
        for &p in &crossing_points {
            if !a.boundary.contains(&p) && !b.boundary.contains(&p) {
                m.set_at_least(Position::Interior, Position::Interior, Dimension::Zero);
                break;
            }
        }
    }

    // Boundary rows/columns from endpoint classification.
    for &e in &a.boundary {
        if on_curves(e, ib) {
            if b.boundary.contains(&e) {
                m.set_at_least(Position::Boundary, Position::Boundary, Dimension::Zero);
            } else {
                m.set_at_least(Position::Boundary, Position::Interior, Dimension::Zero);
            }
        } else {
            m.set_at_least(Position::Boundary, Position::Exterior, Dimension::Zero);
        }
    }
    for &e in &b.boundary {
        if on_curves(e, ia) {
            if !a.boundary.contains(&e) {
                m.set_at_least(Position::Interior, Position::Boundary, Dimension::Zero);
            }
        } else {
            m.set_at_least(Position::Exterior, Position::Boundary, Dimension::Zero);
        }
    }

    // Escape cells.
    if !a_covered {
        m.set_at_least(Position::Interior, Position::Exterior, Dimension::One);
    }
    if !b_covered {
        m.set_at_least(Position::Exterior, Position::Interior, Dimension::One);
    }
    m
}

/// Matrix of a curve set against a polygon set.
pub fn lines_areas(l: &LineSet, areas: &[Polygon]) -> IntersectionMatrix {
    lines_areas_ix(&NaiveCurves(l), &NaiveAreas(areas))
}

/// [`lines_areas`] over candidate-filtered sources.
pub(crate) fn lines_areas_ix(il: &dyn CurveIndex, areas: &dyn AreaOps) -> IntersectionMatrix {
    use jackpine_geom::algorithms::line_split::PortionClass;

    let l = il.line_set();
    let mut m = IntersectionMatrix::empty();
    m.set(Position::Exterior, Position::Exterior, Dimension::Two);
    m.set(Position::Exterior, Position::Interior, Dimension::Two);

    for line in &l.lines {
        for portion in areas.split(line) {
            match portion.class {
                PortionClass::Inside => {
                    m.set_at_least(Position::Interior, Position::Interior, Dimension::One);
                }
                PortionClass::OnBoundary => {
                    m.set_at_least(Position::Interior, Position::Boundary, Dimension::One);
                }
                PortionClass::Outside => {
                    m.set_at_least(Position::Interior, Position::Exterior, Dimension::One);
                }
            }
            // Point events: any portion vertex on the areas' boundary.
            for &c in &portion.coords {
                if areas.locate(c) == Location::Boundary {
                    if l.boundary.contains(&c) {
                        m.set_at_least(Position::Boundary, Position::Boundary, Dimension::Zero);
                    } else {
                        m.set_at_least(Position::Interior, Position::Boundary, Dimension::Zero);
                    }
                }
            }
        }
    }

    for &e in &l.boundary {
        match areas.locate(e) {
            Location::Interior => {
                m.set_at_least(Position::Boundary, Position::Interior, Dimension::Zero)
            }
            Location::Boundary => {
                m.set_at_least(Position::Boundary, Position::Boundary, Dimension::Zero)
            }
            Location::Exterior => {
                m.set_at_least(Position::Boundary, Position::Exterior, Dimension::Zero)
            }
        }
    }

    // E × B: does any part of the areas' boundary escape the curve set?
    let rings_covered = (0..areas.len()).all(|i| {
        areas.polygon(i).rings().all(|r| {
            let ring_line = r.to_linestring();
            curve_covered(&ring_line, il)
        })
    });
    if !rings_covered {
        m.set_at_least(Position::Exterior, Position::Boundary, Dimension::One);
    }
    m
}

/// `true` when `c` lies on any segment of the curve source. Only
/// segments whose envelope contains `c` can pass [`point_on_segment`],
/// so the candidate filter loses nothing.
fn on_curves(c: Coord, ix: &dyn CurveIndex) -> bool {
    let mut hit = false;
    ix.candidates(&Envelope::from_coord(c), &mut |a, b| {
        hit = hit || point_on_segment(c, a, b);
    });
    hit
}

/// `true` when every segment of `l` is covered by collinear overlaps
/// with the cover source. Pruned (envelope-disjoint) pairs can never
/// produce an `Overlap`, and the interval set is sorted before the
/// coverage test, so candidate order is irrelevant.
fn curve_covered(l: &LineString, cover: &dyn CurveIndex) -> bool {
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for (p, q) in l.segments() {
        intervals.clear();
        cover.candidates(&Envelope::from_coords([p, q].iter()), &mut |r, s| {
            if let SegmentIntersection::Overlap(x, y) = segment_intersection(p, q, r, s) {
                intervals.push(interval(p, q, x, y));
            }
        });
        if !covers_unit(&mut intervals) {
            return false;
        }
    }
    true
}

/// The parametric interval of collinear overlap `[x, y]` on segment `p q`.
fn interval(p: Coord, q: Coord, x: Coord, y: Coord) -> (f64, f64) {
    let tx = param_on_segment(p, q, x);
    let ty = param_on_segment(p, q, y);
    (tx.min(ty), tx.max(ty))
}

/// `true` when the merged intervals cover `[0, 1]`.
fn covers_unit(intervals: &mut [(f64, f64)]) -> bool {
    if intervals.is_empty() {
        return false;
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut reach: f64 = 0.0;
    for &(lo, hi) in intervals.iter() {
        if lo > reach + PARAM_EPS {
            return false;
        }
        reach = reach.max(hi);
        if reach >= 1.0 - PARAM_EPS {
            return true;
        }
    }
    reach >= 1.0 - PARAM_EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relate::shape::mod2_boundary;

    fn lineset(coords: &[&[(f64, f64)]]) -> LineSet {
        let lines: Vec<LineString> =
            coords.iter().map(|c| LineString::from_xy(c).unwrap()).collect();
        LineSet { boundary: mod2_boundary(&lines), lines }
    }

    #[test]
    fn interval_coverage() {
        let mut v = vec![(0.0, 0.5), (0.5, 1.0)];
        assert!(covers_unit(&mut v));
        let mut v = vec![(0.0, 0.4), (0.6, 1.0)];
        assert!(!covers_unit(&mut v));
        let mut v = vec![(0.2, 1.0)];
        assert!(!covers_unit(&mut v));
        let mut v: Vec<(f64, f64)> = vec![];
        assert!(!covers_unit(&mut v));
        let mut v = vec![(0.0, 0.3), (0.1, 0.8), (0.75, 1.0)];
        assert!(covers_unit(&mut v));
    }

    #[test]
    fn multiline_junction_interior_crossing() {
        // A path through (1,0) built of two segments crosses a vertical
        // line at the junction: II must be 0 (junction is interior, mod-2).
        let a = lineset(&[&[(0.0, 0.0), (1.0, 0.0)], &[(1.0, 0.0), (2.0, 0.0)]]);
        let b = lineset(&[&[(1.0, -1.0), (1.0, 1.0)]]);
        let m = lines_lines(&a, &b);
        assert_eq!(m.get(Position::Interior, Position::Interior), Dimension::Zero);
    }

    #[test]
    fn covered_line_has_no_exterior_escape() {
        let a = lineset(&[&[(1.0, 0.0), (2.0, 0.0)]]);
        let b = lineset(&[&[(0.0, 0.0), (3.0, 0.0)]]);
        let m = lines_lines(&a, &b);
        assert_eq!(m.get(Position::Interior, Position::Exterior), Dimension::Empty);
        assert_eq!(m.get(Position::Exterior, Position::Interior), Dimension::One);
    }

    #[test]
    fn line_area_boundary_coverage() {
        // A line tracing the full square boundary: EB must be F.
        let square = Polygon::from_xy(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap();
        let trace = lineset(&[&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]]);
        let m = lines_areas(&trace, &[square]);
        assert_eq!(m.get(Position::Exterior, Position::Boundary), Dimension::Empty);
        assert_eq!(m.get(Position::Interior, Position::Boundary), Dimension::One);
        assert_eq!(m.get(Position::Interior, Position::Interior), Dimension::Empty);
    }
}
