//! Prepared geometries: reusable acceleration structures for repeated
//! DE-9IM evaluation against one geometry.
//!
//! A [`PreparedGeometry`] decomposes its geometry into a dimension
//! family once (like [`crate::relate`] does per call) and builds the
//! `jackpine_geom::prepared` indexes — monotone-chain envelope trees
//! for every curve and y-slab edge bins for every ring — so that the
//! spatial join's refine stage pays the preparation cost once per
//! *geometry*, not once per *candidate pair*.
//!
//! ## Bit-identity with the naive path
//!
//! The relate kernels in `relate::{line_rel, poly_rel, point_rel}` are
//! generic over the `CurveIndex` / `AreaOps` traits; this module only
//! supplies indexed implementations of those traits. The indexes are
//! pure candidate filters: they yield a superset of the
//! envelope-intersecting segments, and every surviving pair still goes
//! through the same exact predicates (`orient2d`-based segment tests,
//! ray-cast location), so [`relate_prepared`] returns matrices
//! **bit-identical** to [`crate::relate`]. The equivalence corpus in
//! `tests/prepared_equivalence.rs` asserts exactly that.
//!
//! [`evaluate`] adds sound short-circuits on top (envelope rejects and
//! shared-point accepts) that decide a named predicate without
//! computing the full matrix; each is justified where it is applied.

use std::sync::OnceLock;

use crate::matrix::IntersectionMatrix;
use crate::predicates::{eval_matrix, PredicateKind};
use crate::relate::line_rel::{lines_areas_ix, lines_lines_ix};
use crate::relate::point_rel::{points_areas_ix, points_lines, points_points};
use crate::relate::poly_rel::areas_areas_ix;
use crate::relate::shape::{
    decompose, interior_point, split_line_by_areas_with, AreaOps, CurveIndex, LineSet, Shape,
};
use crate::relate::{empty_vs_family, FamilyKind};
use crate::Result;
use jackpine_geom::algorithms::line_split::LinePortion;
use jackpine_geom::algorithms::locate::Location;
use jackpine_geom::prepared::{ChainSet, PreparedPolygon};
use jackpine_geom::{Coord, Dimension, Envelope, Geometry, LineString, Polygon};

/// A curve set with a monotone-chain envelope tree per member curve.
struct PreparedLineSet {
    set: LineSet,
    chains: Vec<ChainSet>,
}

impl PreparedLineSet {
    fn new(set: LineSet) -> PreparedLineSet {
        let chains = set.lines.iter().map(ChainSet::from_linestring).collect();
        PreparedLineSet { set, chains }
    }
}

impl CurveIndex for PreparedLineSet {
    fn line_set(&self) -> &LineSet {
        &self.set
    }
    fn candidates(&self, qenv: &Envelope, f: &mut dyn FnMut(Coord, Coord)) {
        for c in &self.chains {
            c.for_candidate_edges(qenv, f);
        }
    }
}

/// A polygon set with prepared rings and lazily cached interior probes.
struct PreparedAreaSet {
    polys: Vec<PreparedPolygon>,
    probes: Vec<OnceLock<Coord>>,
}

impl PreparedAreaSet {
    fn new(areas: &[Polygon]) -> PreparedAreaSet {
        let polys: Vec<PreparedPolygon> = areas.iter().map(PreparedPolygon::new).collect();
        let probes = (0..polys.len()).map(|_| OnceLock::new()).collect();
        PreparedAreaSet { polys, probes }
    }
}

impl AreaOps for PreparedAreaSet {
    fn len(&self) -> usize {
        self.polys.len()
    }
    fn polygon(&self, i: usize) -> &Polygon {
        self.polys[i].polygon()
    }
    fn split(&self, line: &LineString) -> Vec<LinePortion> {
        split_line_by_areas_with(line, self.polys.len(), &mut |i, piece| {
            self.polys[i].split_line(piece)
        })
    }
    fn locate(&self, c: Coord) -> Location {
        // Mirrors `locate_in_areas` over the prepared per-polygon locators.
        let mut on_boundary = false;
        for p in &self.polys {
            match p.locate(c) {
                Location::Interior => return Location::Interior,
                Location::Boundary => on_boundary = true,
                Location::Exterior => {}
            }
        }
        if on_boundary {
            Location::Boundary
        } else {
            Location::Exterior
        }
    }
    fn probe(&self, i: usize) -> Coord {
        // `interior_point` is deterministic, so caching its value cannot
        // change any downstream decision.
        *self.probes[i].get_or_init(|| interior_point(self.polys[i].polygon()))
    }
}

/// The indexed counterpart of `relate::shape::Shape`.
enum PreparedShape {
    Empty,
    Points(Vec<Coord>),
    Lines(PreparedLineSet),
    Areas(PreparedAreaSet),
    /// Decomposition failed (mixed-dimension collection); kept so the
    /// prepared entry points can reproduce the naive error lazily.
    Unsupported,
}

impl PreparedShape {
    fn family(&self) -> FamilyKind {
        match self {
            PreparedShape::Empty => FamilyKind::Empty,
            PreparedShape::Points(_) => FamilyKind::Points,
            PreparedShape::Lines(l) => {
                FamilyKind::Lines { has_boundary: !l.set.boundary.is_empty() }
            }
            PreparedShape::Areas(_) => FamilyKind::Areas,
            PreparedShape::Unsupported => unreachable!("unsupported shapes never reach dispatch"),
        }
    }
}

/// A geometry plus the acceleration structures for repeated relate and
/// predicate evaluation against it.
///
/// Construction never fails: geometries the relate machinery does not
/// support (mixed-dimension collections) are remembered as such, and
/// every entry point falls back to the naive path for them so errors
/// are identical to [`crate::relate`]'s.
pub struct PreparedGeometry {
    geom: Geometry,
    env: Envelope,
    dim: Dimension,
    shape: PreparedShape,
}

impl PreparedGeometry {
    /// Prepares `g`: decomposes it into its dimension family and builds
    /// chain trees (curves) or prepared rings (polygons).
    pub fn new(g: &Geometry) -> PreparedGeometry {
        let shape = match decompose(g) {
            Ok(Shape::Empty) => PreparedShape::Empty,
            Ok(Shape::Points(p)) => PreparedShape::Points(p),
            Ok(Shape::Lines(l)) => PreparedShape::Lines(PreparedLineSet::new(l)),
            Ok(Shape::Areas(a)) => PreparedShape::Areas(PreparedAreaSet::new(&a)),
            Err(_) => PreparedShape::Unsupported,
        };
        PreparedGeometry { geom: g.clone(), env: g.envelope(), dim: g.dimension(), shape }
    }

    /// The geometry this preparation was built from.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The geometry's envelope (cached at preparation time).
    pub fn envelope(&self) -> &Envelope {
        &self.env
    }

    fn supported(&self) -> bool {
        !matches!(self.shape, PreparedShape::Unsupported)
    }
}

/// Computes the DE-9IM matrix of two prepared geometries.
///
/// Returns exactly what `relate(a.geometry(), b.geometry())` returns —
/// same matrix, same errors — but runs the kernels over the prepared
/// indexes.
pub fn relate_prepared(a: &PreparedGeometry, b: &PreparedGeometry) -> Result<IntersectionMatrix> {
    if !a.supported() || !b.supported() {
        // Reproduce the naive error (or result, if only one side failed
        // decomposition the naive call fails the same way).
        return crate::relate::relate(&a.geom, &b.geom);
    }
    use PreparedShape as P;
    Ok(match (&a.shape, &b.shape) {
        (P::Empty, _) => empty_vs_family(b.shape.family()),
        (_, P::Empty) => empty_vs_family(a.shape.family()).transposed(),
        (P::Points(pa), P::Points(pb)) => points_points(pa, pb),
        (P::Points(p), P::Lines(l)) => points_lines(p, &l.set),
        (P::Lines(l), P::Points(p)) => points_lines(p, &l.set).transposed(),
        (P::Points(p), P::Areas(ar)) => points_areas_ix(p, ar),
        (P::Areas(ar), P::Points(p)) => points_areas_ix(p, ar).transposed(),
        (P::Lines(la), P::Lines(lb)) => lines_lines_ix(la, lb),
        (P::Lines(l), P::Areas(ar)) => lines_areas_ix(l, ar),
        (P::Areas(ar), P::Lines(l)) => lines_areas_ix(l, ar).transposed(),
        (P::Areas(aa), P::Areas(ab)) => areas_areas_ix(aa, ab),
        (P::Unsupported, _) | (_, P::Unsupported) => unreachable!(),
    })
}

/// The result of [`evaluate`]: the predicate's value plus whether a
/// short-circuit decided it without computing the full matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredicateOutcome {
    /// The predicate's truth value.
    pub value: bool,
    /// `true` when an envelope reject or shared-point accept decided the
    /// predicate before the DE-9IM matrix was computed.
    pub short_circuit: bool,
}

/// Evaluates a named predicate over prepared operands.
///
/// Produces the same value (and the same errors) as running the naive
/// predicate behind the SQL layer's envelope prefilter, i.e. as
/// `a.env ∩ b.env ≠ ∅ && predicate(a, b)` (with disjoint negated): the
/// unconditional envelope gate below mirrors that prefilter exactly,
/// and every further short-circuit is a sound decision of the
/// predicate itself.
pub fn evaluate(
    kind: PredicateKind,
    a: &PreparedGeometry,
    b: &PreparedGeometry,
) -> Result<PredicateOutcome> {
    let sc = |value| Ok(PredicateOutcome { value, short_circuit: true });

    // Mirror of the SQL layer's envelope prefilter: disjoint envelopes
    // decide every predicate (only Disjoint is true) without touching
    // the operands — including unsupported ones, exactly like the
    // naive `envs_intersect && pred(..)` expression short-circuits.
    if !a.env.intersects(&b.env) {
        return sc(kind == PredicateKind::Disjoint);
    }

    // Further short-circuits need decomposed shapes; gate them on both
    // sides being supported so unsupported operands fall through to the
    // full path and fail with the naive error.
    if a.supported() && b.supported() {
        match kind {
            // Equal point sets have equal envelopes.
            PredicateKind::Equals if a.env != b.env => return sc(false),
            // a ⊆ b (within / covered-by) forces env(a) ⊆ env(b).
            PredicateKind::Within | PredicateKind::CoveredBy
                if !b.env.contains_envelope(&a.env) =>
            {
                return sc(false)
            }
            PredicateKind::Contains | PredicateKind::Covers if !a.env.contains_envelope(&b.env) => {
                return sc(false)
            }
            // A single shared point decides intersects/disjoint; only a
            // *found* point is conclusive (absence proves nothing).
            PredicateKind::Intersects | PredicateKind::Disjoint if quick_shared_point(a, b) => {
                return sc(kind == PredicateKind::Intersects)
            }
            _ => {}
        }
    }

    let m = relate_prepared(a, b)?;
    Ok(PredicateOutcome { value: eval_matrix(kind, &m, a.dim, b.dim)?, short_circuit: false })
}

/// Cheap sound test for a point common to both operands: locates a few
/// vertices of one side's members against the other side's prepared
/// areas. `true` is conclusive (the point is in both); `false` means
/// "unknown".
fn quick_shared_point(a: &PreparedGeometry, b: &PreparedGeometry) -> bool {
    use PreparedShape as P;
    match (&a.shape, &b.shape) {
        (P::Areas(sa), P::Areas(sb)) => areas_vertex_hit(sa, sb) || areas_vertex_hit(sb, sa),
        (P::Lines(sl), P::Areas(sa)) | (P::Areas(sa), P::Lines(sl)) => sl
            .set
            .lines
            .iter()
            .filter_map(|l| l.start())
            .any(|c| sa.locate(c) != Location::Exterior),
        _ => false,
    }
}

/// `true` when some exterior-ring vertex of a member of `sub` lies in or
/// on `sup`. A vertex is a point of its polygon (boundary ⊆ polygon), so
/// a non-exterior location is a shared point.
fn areas_vertex_hit(sub: &PreparedAreaSet, sup: &PreparedAreaSet) -> bool {
    sub.polys
        .iter()
        .map(|p| p.polygon().exterior().coords()[0])
        .any(|c| sup.locate(c) != Location::Exterior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relate::relate;
    use jackpine_geom::wkt;

    fn g(w: &str) -> Geometry {
        wkt::parse(w).unwrap()
    }

    const CASES: &[&str] = &[
        "POINT (1 1)",
        "POINT (5 5)",
        "MULTIPOINT ((0 0), (2 2), (9 9))",
        "LINESTRING (0 0, 2 2, 4 0)",
        "LINESTRING (-1 1, 5 1)",
        "LINESTRING (0 0, 2 0)",
        "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
        "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))",
        "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))",
        "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))",
        "POLYGON ((3 3, 7 3, 7 7, 3 7, 3 3))",
        "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
        "GEOMETRYCOLLECTION EMPTY",
    ];

    #[test]
    fn relate_prepared_matches_naive_over_case_grid() {
        for wa in CASES {
            let ga = g(wa);
            let pa = PreparedGeometry::new(&ga);
            for wb in CASES {
                let gb = g(wb);
                let pb = PreparedGeometry::new(&gb);
                let naive = relate(&ga, &gb).unwrap().to_string();
                let prep = relate_prepared(&pa, &pb).unwrap().to_string();
                assert_eq!(naive, prep, "{wa} vs {wb}");
            }
        }
    }

    #[test]
    fn evaluate_matches_naive_predicates_behind_env_gate() {
        use crate::predicates;
        type Naive = fn(&Geometry, &Geometry) -> Result<bool>;
        let kinds = [
            (PredicateKind::Equals, predicates::equals as Naive),
            (PredicateKind::Disjoint, predicates::disjoint),
            (PredicateKind::Intersects, predicates::intersects),
            (PredicateKind::Touches, predicates::touches),
            (PredicateKind::Crosses, predicates::crosses),
            (PredicateKind::Within, predicates::within),
            (PredicateKind::Contains, predicates::contains),
            (PredicateKind::Overlaps, predicates::overlaps),
            (PredicateKind::Covers, predicates::covers),
            (PredicateKind::CoveredBy, predicates::covered_by),
        ];
        for wa in CASES {
            let ga = g(wa);
            let pa = PreparedGeometry::new(&ga);
            for wb in CASES {
                let gb = g(wb);
                let pb = PreparedGeometry::new(&gb);
                let envs_intersect = ga.envelope().intersects(&gb.envelope());
                for (kind, naive) in kinds {
                    // The SQL layer's naive expression.
                    let expect = if kind == PredicateKind::Disjoint {
                        !envs_intersect || naive(&ga, &gb).unwrap()
                    } else {
                        envs_intersect && naive(&ga, &gb).unwrap()
                    };
                    let got = evaluate(kind, &pa, &pb).unwrap();
                    assert_eq!(expect, got.value, "{kind:?}: {wa} vs {wb}");
                }
            }
        }
    }

    #[test]
    fn unsupported_operand_reproduces_naive_error() {
        let mixed = g("GEOMETRYCOLLECTION (POINT (0 0), LINESTRING (0 0, 1 1))");
        let poly = g("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        let pm = PreparedGeometry::new(&mixed);
        let pp = PreparedGeometry::new(&poly);
        assert!(relate(&mixed, &poly).is_err());
        assert!(relate_prepared(&pm, &pp).is_err());
        // Overlapping envelopes: the full path must fail like the naive one.
        assert!(evaluate(PredicateKind::Intersects, &pm, &pp).is_err());
        // Disjoint envelopes: both paths short-circuit without error.
        let far = PreparedGeometry::new(&g("POINT (100 100)"));
        let out = evaluate(PredicateKind::Intersects, &pm, &far).unwrap();
        assert!(!out.value);
        assert!(out.short_circuit);
    }

    #[test]
    fn short_circuits_fire_where_expected() {
        let a = PreparedGeometry::new(&g("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"));
        let b = PreparedGeometry::new(&g("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"));
        let far = PreparedGeometry::new(&g("POLYGON ((9 9, 10 9, 10 10, 9 10, 9 9))"));
        // Envelope reject.
        let out = evaluate(PredicateKind::Intersects, &a, &far).unwrap();
        assert!(!out.value && out.short_circuit);
        let out = evaluate(PredicateKind::Disjoint, &a, &far).unwrap();
        assert!(out.value && out.short_circuit);
        // Containment envelope reject: b's env is not inside a's.
        let out = evaluate(PredicateKind::Contains, &a, &b).unwrap();
        assert!(!out.value && out.short_circuit);
        // Shared-vertex accept: b's corner (1,1) is interior to a.
        let out = evaluate(PredicateKind::Intersects, &a, &b).unwrap();
        assert!(out.value && out.short_circuit);
        // Touches has no short-circuit here: full matrix.
        let out = evaluate(PredicateKind::Touches, &a, &b).unwrap();
        assert!(!out.value && !out.short_circuit);
    }
}
