use std::fmt;

/// Errors from topological computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// A DE-9IM pattern string was malformed (wrong length or characters).
    BadPattern(String),
    /// The operand combination is not supported (mixed-dimension
    /// geometry collections).
    Unsupported(String),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::BadPattern(p) => write!(f, "bad DE-9IM pattern '{p}'"),
            TopoError::Unsupported(msg) => write!(f, "unsupported relate operands: {msg}"),
        }
    }
}

impl std::error::Error for TopoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(TopoError::BadPattern("xyz".into()).to_string().contains("xyz"));
        assert!(TopoError::Unsupported("mixed".into()).to_string().contains("mixed"));
    }
}
