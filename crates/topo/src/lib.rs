//! # jackpine-topo
//!
//! Dimensionally Extended 9-Intersection Model (DE-9IM) for the Jackpine
//! benchmark.
//!
//! The DE-9IM describes the topological relationship between two
//! geometries `a` and `b` as a 3×3 matrix: for each pairing of
//! {interior, boundary, exterior} of `a` with the same three point sets of
//! `b`, the matrix records the dimension of the intersection
//! (`F` = empty, `0`, `1` or `2`). Jackpine's topological micro benchmark
//! is built from queries over the eight named relations derived from this
//! matrix (Equals, Disjoint, Intersects, Touches, Crosses, Within,
//! Contains, Overlaps), which this crate implements for all concrete
//! geometry-type pairs.
//!
//! Entry points:
//! * [`relate`] — compute the full matrix,
//! * [`IntersectionMatrix::matches`] — test against a pattern such as
//!   `"T*F**FFF*"`,
//! * the named predicates in [`predicates`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
pub mod predicates;
pub mod prepared;
mod relate;

pub use error::TopoError;
pub use matrix::IntersectionMatrix;
pub use predicates::{
    contains, covered_by, covers, crosses, disjoint, equals, intersects, overlaps, touches, within,
    PredicateKind,
};
pub use prepared::{evaluate, relate_prepared, PredicateOutcome, PreparedGeometry};
pub use relate::{interior_point, relate};

/// Result alias for topological computations.
pub type Result<T> = std::result::Result<T, TopoError>;
