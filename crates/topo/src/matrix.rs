use crate::{Result, TopoError};
use jackpine_geom::Dimension;
use std::fmt;

/// One of the three point sets a geometry partitions the plane into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Position {
    /// The geometry's interior.
    Interior,
    /// The geometry's combinatorial boundary.
    Boundary,
    /// Everything else.
    Exterior,
}

impl Position {
    const ALL: [Position; 3] = [Position::Interior, Position::Boundary, Position::Exterior];

    fn index(self) -> usize {
        match self {
            Position::Interior => 0,
            Position::Boundary => 1,
            Position::Exterior => 2,
        }
    }
}

/// A DE-9IM matrix: the dimensions of the nine pairwise intersections of
/// `{interior, boundary, exterior}(a)` × `{interior, boundary, exterior}(b)`.
///
/// Printed and pattern-matched in row-major order
/// (`II IB IE / BI BB BE / EI EB EE`), e.g. `"212101212"`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct IntersectionMatrix {
    cells: [[Dimension; 3]; 3],
}

impl IntersectionMatrix {
    /// A matrix with every cell empty (`FFFFFFFFF`).
    pub fn empty() -> IntersectionMatrix {
        IntersectionMatrix { cells: [[Dimension::Empty; 3]; 3] }
    }

    /// Reads one cell.
    #[inline]
    pub fn get(&self, a: Position, b: Position) -> Dimension {
        self.cells[a.index()][b.index()]
    }

    /// Sets one cell.
    #[inline]
    pub fn set(&mut self, a: Position, b: Position, dim: Dimension) {
        self.cells[a.index()][b.index()] = dim;
    }

    /// Raises one cell to at least `dim` (never lowers it).
    #[inline]
    pub fn set_at_least(&mut self, a: Position, b: Position, dim: Dimension) {
        let cur = self.get(a, b);
        if dim > cur {
            self.set(a, b, dim);
        }
    }

    /// The matrix of the swapped operand order (`relate(b, a)`).
    pub fn transposed(&self) -> IntersectionMatrix {
        let mut out = IntersectionMatrix::empty();
        for a in Position::ALL {
            for b in Position::ALL {
                out.set(b, a, self.get(a, b));
            }
        }
        out
    }

    /// Tests the matrix against a 9-character DE-9IM pattern.
    ///
    /// Pattern characters: `F` (must be empty), `T` (must be non-empty),
    /// `*` (anything), `0`/`1`/`2` (exact dimension). Case-insensitive.
    ///
    /// # Errors
    /// [`TopoError::BadPattern`] for a wrong-length pattern or an unknown
    /// character.
    pub fn matches(&self, pattern: &str) -> Result<bool> {
        let chars: Vec<char> = pattern.chars().collect();
        if chars.len() != 9 {
            return Err(TopoError::BadPattern(pattern.to_string()));
        }
        // Validate the whole pattern before evaluating, so malformed
        // patterns are rejected even when an earlier cell already fails.
        if chars.iter().any(|c| !"FT*012ft".contains(*c)) {
            return Err(TopoError::BadPattern(pattern.to_string()));
        }
        for (i, &pc) in chars.iter().enumerate() {
            let dim = self.cells[i / 3][i % 3];
            let ok = match pc.to_ascii_uppercase() {
                'F' => dim == Dimension::Empty,
                'T' => dim != Dimension::Empty,
                '*' => true,
                '0' => dim == Dimension::Zero,
                '1' => dim == Dimension::One,
                '2' => dim == Dimension::Two,
                _ => unreachable!("validated above"),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Parses a matrix from its 9-character string form (digits and `F`).
    ///
    /// # Errors
    /// [`TopoError::BadPattern`] on malformed input (note `T` and `*` are
    /// pattern-only and not valid here).
    pub fn from_string(s: &str) -> Result<IntersectionMatrix> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 9 {
            return Err(TopoError::BadPattern(s.to_string()));
        }
        let mut m = IntersectionMatrix::empty();
        for (i, &c) in chars.iter().enumerate() {
            let dim = match c.to_ascii_uppercase() {
                'F' => Dimension::Empty,
                '0' => Dimension::Zero,
                '1' => Dimension::One,
                '2' => Dimension::Two,
                _ => return Err(TopoError::BadPattern(s.to_string())),
            };
            m.cells[i / 3][i % 3] = dim;
        }
        Ok(m)
    }
}

impl fmt::Display for IntersectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.cells {
            for d in row {
                write!(f, "{}", d.as_char())?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for IntersectionMatrix {
    /// Debug delegates to the canonical 9-character form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IM({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_string() {
        let m = IntersectionMatrix::from_string("212101212").unwrap();
        assert_eq!(m.to_string(), "212101212");
        let m = IntersectionMatrix::from_string("FF1FF0102").unwrap();
        assert_eq!(m.to_string(), "FF1FF0102");
    }

    #[test]
    fn get_set() {
        let mut m = IntersectionMatrix::empty();
        assert_eq!(m.get(Position::Interior, Position::Interior), Dimension::Empty);
        m.set(Position::Interior, Position::Exterior, Dimension::Two);
        assert_eq!(m.get(Position::Interior, Position::Exterior), Dimension::Two);
        m.set_at_least(Position::Interior, Position::Exterior, Dimension::Zero);
        assert_eq!(m.get(Position::Interior, Position::Exterior), Dimension::Two);
        m.set_at_least(Position::Boundary, Position::Boundary, Dimension::One);
        assert_eq!(m.get(Position::Boundary, Position::Boundary), Dimension::One);
    }

    #[test]
    fn transpose() {
        let m = IntersectionMatrix::from_string("01201F2F1").unwrap();
        let t = m.transposed();
        assert_eq!(t.to_string(), "00211F2F1");
        // Explicit cell check: (I,B) of m == (B,I) of t.
        assert_eq!(
            m.get(Position::Interior, Position::Boundary),
            t.get(Position::Boundary, Position::Interior)
        );
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn pattern_matching() {
        let m = IntersectionMatrix::from_string("212FF1FF2").unwrap();
        assert!(m.matches("T*F**FFF*").is_ok());
        assert!(!m.matches("T*F**FFF*").unwrap()); // BE is 1, pattern wants F at position 5
        assert!(m.matches("2*2FF*FF2").unwrap());
        assert!(m.matches("T********").unwrap());
        assert!(m.matches("*********").unwrap());
        assert!(!m.matches("F********").unwrap());
    }

    #[test]
    fn bad_patterns() {
        let m = IntersectionMatrix::empty();
        assert!(m.matches("TT").is_err());
        assert!(m.matches("TTTTTTTTX").is_err());
        assert!(IntersectionMatrix::from_string("T********").is_err());
        assert!(IntersectionMatrix::from_string("12").is_err());
    }

    #[test]
    fn case_insensitive_patterns() {
        let m = IntersectionMatrix::from_string("fff fff ff2".replace(' ', "").as_str()).unwrap();
        assert!(m.matches("fffffffft").unwrap());
    }
}
