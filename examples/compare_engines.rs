//! Side-by-side engine comparison: run the same toxic-spill analysis on
//! all three engine profiles and show where the MBR-only semantics
//! diverge from the exact ones — the heart of what Jackpine was built to
//! expose.
//!
//! ```sh
//! cargo run --release --example compare_engines
//! ```

use jackpine::bench::load_dataset;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::geom::algorithms::buffer::buffer_with_segments;
use jackpine::geom::{wkt, Geometry, Point};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let data = TigerDataset::generate(&TigerConfig { seed: 20110411, scale: 0.05 });

    // The spill site: a road vertex near the middle of the state.
    let road = &data.roads[data.roads.len() / 2];
    let site = road.geom.coords()[0];
    let site_geom = Geometry::Point(Point::from_coord(site).expect("finite vertex"));
    let ring = buffer_with_segments(&site_geom, 0.08, 4).expect("impact ring");
    let ring_wkt = wkt::write(&ring);
    println!("toxic spill at ({:.4}, {:.4}), impact radius 0.08°\n", site.x, site.y);

    println!("{:<12} {:>10} {:>10} {:>10} {:>9}", "engine", "roads", "water", "people", "ms");
    for profile in EngineProfile::ALL {
        let db = Arc::new(SpatialDb::new(profile));
        load_dataset(&db, &data).expect("load");

        let start = Instant::now();
        let roads = scalar(
            &db,
            &format!(
                "SELECT COUNT(*) FROM roads WHERE ST_Intersects(geom, \
                 ST_GeomFromText('{ring_wkt}'))"
            ),
        );
        let water = scalar(
            &db,
            &format!(
                "SELECT COUNT(*) FROM areawater WHERE ST_Intersects(geom, \
                 ST_GeomFromText('{ring_wkt}'))"
            ),
        );
        let people = scalar(
            &db,
            &format!(
                "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, \
                 ST_GeomFromText('{ring_wkt}'))"
            ),
        );
        let elapsed = start.elapsed();

        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9.2}",
            db.name(),
            roads,
            water,
            people,
            elapsed.as_secs_f64() * 1e3
        );
    }

    println!(
        "\nThe mbr-only profile evaluates predicates on bounding rectangles, so its\n\
         counts are a superset of the exact engines' — the false-positive behaviour\n\
         the paper documented for MySQL-era spatial support."
    );
}

fn scalar(db: &Arc<SpatialDb>, sql: &str) -> i64 {
    db.execute(sql).expect("query").scalar().and_then(|v| v.as_i64()).unwrap_or(0)
}
