//! Quick start: create a spatial database, load a few features, and run
//! the core query shapes — window search, topological predicate, spatial
//! join, nearest neighbour.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jackpine::engine::{EngineProfile, SpatialDb};
use std::sync::Arc;

fn main() {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));

    // Schema + data: a handful of city features.
    db.execute("CREATE TABLE parks (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
    db.execute("CREATE TABLE cafes (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
    let parks = [
        (1, "Riverside Park", "POLYGON ((0 0, 4 0, 4 3, 0 3, 0 0))"),
        (2, "Oak Commons", "POLYGON ((6 1, 9 1, 9 4, 6 4, 6 1))"),
        (3, "Hilltop Green", "POLYGON ((2 5, 5 5, 5 8, 2 8, 2 5))"),
    ];
    for (id, name, wkt) in parks {
        db.execute(&format!("INSERT INTO parks VALUES ({id}, '{name}', ST_GeomFromText('{wkt}'))"))
            .unwrap();
    }
    let cafes = [
        (1, "Bean There", "POINT (1 1)"),
        (2, "Grindhouse", "POINT (7 2)"),
        (3, "Percolator", "POINT (5 9)"),
        (4, "Drip Drop", "POINT (3 6)"),
    ];
    for (id, name, wkt) in cafes {
        db.execute(&format!("INSERT INTO cafes VALUES ({id}, '{name}', ST_GeomFromText('{wkt}'))"))
            .unwrap();
    }
    db.create_spatial_index("parks", "geom").unwrap();
    db.create_spatial_index("cafes", "geom").unwrap();

    // 1. Window search: what's on this map tile?
    let r = db
        .execute("SELECT name FROM parks WHERE MBRIntersects(geom, ST_MakeEnvelope(0, 0, 5, 5))")
        .unwrap();
    println!("parks on tile (0,0)-(5,5):");
    for row in &r.rows {
        println!("  - {}", row[0]);
    }

    // 2. Topological predicate: cafés inside a park.
    let r = db
        .execute("SELECT c.name, p.name FROM cafes c JOIN parks p ON ST_Within(c.geom, p.geom)")
        .unwrap();
    println!("\ncafés inside parks:");
    for row in &r.rows {
        println!("  - {} in {}", row[0], row[1]);
    }

    // 3. Analysis function: park areas.
    let r = db.execute("SELECT name, ST_Area(geom) FROM parks ORDER BY 2 DESC").unwrap();
    println!("\npark areas:");
    for row in &r.rows {
        println!("  - {}: {}", row[0], row[1]);
    }

    // 4. Nearest neighbour: the café closest to a point.
    let r = db
        .execute(
            "SELECT name FROM cafes \
             ORDER BY ST_Distance(geom, ST_GeomFromText('POINT (4 4)')) LIMIT 1",
        )
        .unwrap();
    println!("\nnearest café to (4,4): {}", r.rows[0][0]);
}
