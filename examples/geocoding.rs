//! Geocoding and reverse geocoding over the synthetic road network — the
//! workloads behind Jackpine's M2/M3 macro scenarios.
//!
//! Forward: `"<number> <street>, <zip>"` → a coordinate interpolated
//! along the matching road's address range.
//! Reverse: a GPS fix → the nearest road and approximate street number.
//!
//! ```sh
//! cargo run --release --example geocoding
//! ```

use jackpine::bench::load_dataset;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::geom::{wkt, Geometry};
use std::sync::Arc;

fn main() {
    let data = TigerDataset::generate(&TigerConfig { seed: 20110411, scale: 0.05 });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("load");

    // ---- forward geocoding -------------------------------------------------
    // Take three real addresses from the dataset.
    println!("forward geocoding:");
    for road in data.roads.iter().step_by(data.roads.len() / 3).take(3) {
        let number = (road.from_addr + road.to_addr) / 2;
        let r = db
            .execute(&format!(
                "SELECT from_addr, to_addr, geom FROM roads \
                 WHERE name = '{}' AND zip = {} AND from_addr <= {number} AND to_addr >= {number}",
                road.name, road.zip
            ))
            .expect("lookup");
        match r.rows.first() {
            Some(row) => {
                let lo = row[0].as_i64().unwrap_or(0);
                let hi = row[1].as_i64().unwrap_or(1);
                let geom = row[2].as_geom().expect("road geometry");
                // Interpolate the position along the centreline.
                let Geometry::LineString(line) = wkt::parse(&wkt::write(geom)).expect("roundtrip")
                else {
                    unreachable!("roads are linestrings");
                };
                let t = (number - lo) as f64 / (hi - lo).max(1) as f64;
                let pos = line.interpolate(t * line.length()).expect("non-empty road");
                println!("  {number} {} ({}) -> ({:.5}, {:.5})", road.name, road.zip, pos.x, pos.y);
            }
            None => println!("  {number} {} ({}): no match", road.name, road.zip),
        }
    }

    // ---- reverse geocoding ---------------------------------------------------
    println!("\nreverse geocoding:");
    for road in data.roads.iter().skip(7).step_by(data.roads.len() / 3).take(3) {
        // Simulate a GPS fix near this road.
        let v = road.geom.coords()[0];
        let (x, y) = (v.x + 0.0005, v.y - 0.0005);
        let r = db
            .execute(&format!(
                "SELECT name, zip, from_addr FROM roads \
                 ORDER BY ST_Distance(geom, ST_GeomFromText('POINT ({x} {y})')) LIMIT 1"
            ))
            .expect("knn");
        let row = &r.rows[0];
        println!("  fix ({x:.5}, {y:.5}) -> near {} block of {} ({})", row[2], row[0], row[1]);
    }
}
