//! Flood-risk analysis over the synthetic TIGER-like dataset: buffer a
//! river into a flood zone and inventory everything at risk — the
//! workload behind Jackpine's M4 macro scenario, here written against
//! the public API directly.
//!
//! ```sh
//! cargo run --release --example flood_risk
//! ```

use jackpine::bench::load_dataset;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::geom::algorithms::buffer::buffer_with_segments;
use jackpine::geom::{wkt, Geometry};
use std::sync::Arc;

fn main() {
    // A small state extract; raise `scale` for a bigger run.
    let data = TigerDataset::generate(&TigerConfig { seed: 20110411, scale: 0.05 });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    let summary = load_dataset(&db, &data).expect("load");
    println!(
        "loaded {} rows in {:?} (+{:?} indexing)\n",
        summary.total_rows(),
        summary.load_time,
        summary.index_time
    );

    let river = data
        .areawater
        .iter()
        .find(|w| w.name.ends_with("RIVER"))
        .expect("dataset always has rivers");
    println!("flood event on the {}", river.name);

    // Build the flood zone: a 0.03° buffer around the river band.
    let zone = buffer_with_segments(&Geometry::Polygon(river.geom.clone()), 0.03, 2)
        .expect("river buffer");
    let zone_wkt = wkt::write(&zone);

    let count = |sql: &str| -> i64 {
        db.execute(sql).expect("query").scalar().and_then(|v| v.as_i64()).unwrap_or(0)
    };

    let landmarks = count(&format!(
        "SELECT COUNT(*) FROM arealm WHERE ST_Intersects(geom, ST_GeomFromText('{zone_wkt}'))"
    ));
    let roads = count(&format!(
        "SELECT COUNT(*) FROM roads WHERE ST_Intersects(geom, ST_GeomFromText('{zone_wkt}'))"
    ));
    let settlements = count(&format!(
        "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, ST_GeomFromText('{zone_wkt}'))"
    ));

    println!("flood zone impact:");
    println!("  landmarks at risk : {landmarks}");
    println!("  roads cut off     : {roads}");
    println!("  settlements inside: {settlements}");

    // Exact flooded area of affected landmarks (overlay in the database).
    let r = db
        .execute(&format!(
            "SELECT SUM(ST_Area(ST_Intersection(geom, ST_GeomFromText('{zone_wkt}')))) \
             FROM arealm WHERE ST_Intersects(geom, ST_GeomFromText('{zone_wkt}'))"
        ))
        .expect("overlay query");
    println!("  flooded landmark area: {} deg²", r.rows[0][0]);

    // Which counties does the flood zone touch?
    let r = db
        .execute(&format!(
            "SELECT name FROM county WHERE ST_Intersects(geom, ST_GeomFromText('{zone_wkt}'))"
        ))
        .expect("county query");
    let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    println!("  counties affected : {}", names.join(", "));
}
