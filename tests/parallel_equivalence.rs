//! The morsel executor's core guarantee: every benchmark query returns
//! **identical** results at any worker count. Also pins the datagen row
//! counts at scale 0.25 so PRNG or generator drift is caught.

use jackpine::bench::load_dataset;
use jackpine::bench::macrobench::{all_scenarios, ScenarioConfig};
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::sql::ResultSet;
use std::sync::Arc;

const SCALE: f64 = 0.02;

fn test_db(data: &TigerDataset) -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, data).expect("dataset loads");
    db
}

/// Rows as strings, sorted, so comparisons are independent of row order
/// (the executor preserves order anyway; sorting makes the test's claim
/// purely about content).
fn sorted_rows(r: &ResultSet) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> =
        r.rows.iter().map(|row| row.iter().map(|v| v.to_string()).collect()).collect();
    rows.sort();
    rows
}

fn assert_equivalent(db: &Arc<SpatialDb>, label: &str, sql: &str) {
    db.set_workers(1);
    let serial = db.execute(sql);
    for workers in [2usize, 4] {
        db.set_workers(workers);
        let parallel = db.execute(sql);
        match (&serial, &parallel) {
            (Ok(s), Ok(p)) => {
                // The executor promises bit-identical output including
                // order; check the strong claim first, then the sorted
                // comparison for a clearer diff on failure.
                assert_eq!(
                    sorted_rows(s),
                    sorted_rows(p),
                    "{label}: workers=1 vs workers={workers} content differs"
                );
                assert_eq!(s, p, "{label}: workers=1 vs workers={workers} row order differs");
            }
            (Err(_), Err(_)) => {}
            (s, p) => panic!(
                "{label}: workers=1 gave {} but workers={workers} gave {}",
                if s.is_ok() { "Ok" } else { "Err" },
                if p.is_ok() { "Ok" } else { "Err" }
            ),
        }
    }
    db.set_workers(1);
}

#[test]
fn micro_suites_identical_at_any_worker_count() {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let db = test_db(&data);
    for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
        assert_equivalent(&db, q.id, &q.sql);
    }
}

#[test]
fn macro_scenario_steps_identical_at_any_worker_count() {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let db = test_db(&data);
    let config = ScenarioConfig { seed: 0xbead, sessions: 1 };
    for scenario in all_scenarios(&data, &config) {
        for (label, sql) in &scenario.steps {
            assert_equivalent(&db, &format!("{}/{label}", scenario.id), sql);
        }
    }
}

/// The deterministic engine counters (index probes, candidates, refine
/// counts, heap fetches) are a function of the statement sequence alone:
/// two fresh engines running the same suite at different worker counts
/// must report byte-identical values for them. Scheduling-dependent
/// counters (morsel dispatch, queue waits) are explicitly excluded.
#[test]
fn deterministic_counters_equal_across_worker_counts() {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let run_suite = |workers: usize| {
        let db = test_db(&data);
        db.set_workers(workers);
        let before = db.metrics_snapshot();
        for q in topo_suite(&data) {
            let _ = db.execute(&q.sql);
        }
        db.metrics_snapshot().delta_since(&before).deterministic_counters()
    };
    let serial = run_suite(1);
    assert!(
        serial.iter().any(|(_, v)| *v > 0),
        "suite must move at least one deterministic counter: {serial:?}"
    );
    for workers in [2usize, 4] {
        let parallel = run_suite(workers);
        assert_eq!(
            serial, parallel,
            "deterministic counters differ between workers=1 and workers={workers}"
        );
    }
}

/// Metric snapshots are safe at any moment: a thread hammering
/// `metrics_snapshot()` (and its JSON rendering) while parallel queries
/// run must never panic, and every mid-flight snapshot stays internally
/// sane (candidates ≥ hits can be momentarily torn, but counters never
/// go backwards).
#[test]
fn mid_flight_snapshots_never_panic() {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let db = test_db(&data);
    db.set_workers(4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let observer = scope.spawn(|| {
            let mut last_queries = 0u64;
            let mut snapshots = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = db.metrics_snapshot();
                let queries = snap.counter("queries");
                assert!(queries >= last_queries, "counter went backwards");
                last_queries = queries;
                let _ = snap.to_json();
                snapshots += 1;
            }
            snapshots
        });
        for q in topo_suite(&data) {
            db.execute(&q.sql).expect(q.id);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let snapshots = observer.join().expect("observer thread must not panic");
        assert!(snapshots > 0, "observer never got a snapshot in");
    });
}

#[test]
fn datagen_row_counts_pinned_at_quarter_scale() {
    let data = TigerDataset::generate(&TigerConfig { scale: 0.25, ..TigerConfig::default() });
    assert_eq!(data.counties.len(), 16, "county count drifted");
    assert_eq!(data.roads.len(), 5008, "roads count drifted");
    assert_eq!(data.arealm.len(), 375, "arealm count drifted");
    assert_eq!(data.pointlm.len(), 1000, "pointlm count drifted");
    assert_eq!(data.areawater.len(), 202, "areawater count drifted");
    assert_eq!(data.total_rows(), 6601);
}
