//! Vectorized-vs-row equivalence: the batch executor (columnar MBR
//! prefilter + selection-vector refine) must be **bit-identical** to the
//! row-at-a-time filter — same rows in the same order, same errors, same
//! NULL semantics, same DE-9IM outcomes — at every worker count and
//! batch size, including batch sizes that leave ragged tails (1, 7) and
//! the default (1024, larger than every corpus here so a whole morsel is
//! one batch).
//!
//! The corpus mixes grid-snapped polygons/lines/points (shared edges and
//! corner contacts are common, not measure-zero), NULL geometries,
//! empty geometries (NaN-envelope encoding), and — for the error-path
//! checks — mixed-dimension geometry collections that the DE-9IM
//! machinery rejects, so refine-stage errors must surface identically
//! and at the same first row on both paths.

use jackpine::bench::load_dataset;
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::sql::ResultSet;
use std::sync::Arc;

/// Deterministic 64-bit LCG (same constants as the in-tree PRNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

/// Grid-snapped WKT corpus: rectangles, triangles, line walks, points,
/// plus pinned boundary-contact cases, one empty geometry and NULLs
/// (added by the loader). Integer coordinates make touches/equality
/// common.
fn corpus_wkts(seed: u64) -> Vec<String> {
    let mut rng = Lcg(seed);
    let mut all: Vec<String> = vec![
        // Shared full edge, corner-only contact, identical squares.
        "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))".into(),
        "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))".into(),
        "POLYGON ((4 2, 6 2, 6 4, 4 4, 4 2))".into(),
        "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))".into(),
        // Donut with a square exactly filling the hole ring.
        "POLYGON ((-1 -1, 3 -1, 3 3, -1 3, -1 -1), (0 0, 2 0, 2 2, 0 2, 0 0))".into(),
        "POLYGON ((0.5 0.5, 1.5 0.5, 1.5 1.5, 0.5 1.5, 0.5 0.5))".into(),
        // Lines on an edge, through an interior, ending on a boundary.
        "LINESTRING (0 0, 2 0)".into(),
        "LINESTRING (-1 1, 3 1)".into(),
        "LINESTRING (2 2, 5 5)".into(),
        // Boundary vertex, edge point, interior point.
        "POINT (0 0)".into(),
        "POINT (1 0)".into(),
        "POINT (1 1)".into(),
        // Empty geometry: NaN-quad envelope, intersects nothing.
        "GEOMETRYCOLLECTION EMPTY".into(),
    ];
    for _ in 0..8 {
        let (x, y) = (rng.below(8), rng.below(8));
        let (w, h) = (1 + rng.below(4), 1 + rng.below(4));
        all.push(format!(
            "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))",
            x + w,
            x + w,
            y + h,
            y + h
        ));
        let (px, py) = (rng.below(10), rng.below(10));
        all.push(format!("POINT ({px} {py})"));
        let (mut lx, mut ly) = (rng.below(8), rng.below(8));
        let mut pts = vec![format!("{lx} {ly}")];
        for _ in 0..2 + rng.below(3) {
            match rng.below(4) {
                0 => lx += 1 + rng.below(2),
                1 => lx -= 1 + rng.below(2),
                2 => ly += 1 + rng.below(2),
                _ => ly -= 1 + rng.below(2),
            }
            pts.push(format!("{lx} {ly}"));
        }
        all.push(format!("LINESTRING ({})", pts.join(", ")));
    }
    all
}

/// A table of the corpus with NULL-geometry rows and a non-geometry
/// column, spatially indexed. NULL operands make some predicates
/// (e.g. `ST_Disjoint`) raise a type error — identically on both paths
/// — so the counter test, which needs every query to succeed, builds
/// its table with `with_nulls = false`.
fn corpus_db_with(seed: u64, with_nulls: bool) -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE shapes (id BIGINT, tag TEXT, geom GEOMETRY)").unwrap();
    for (i, w) in corpus_wkts(seed).iter().enumerate() {
        db.execute(&format!("INSERT INTO shapes VALUES ({i}, 't{i}', ST_GeomFromText('{w}'))"))
            .unwrap();
    }
    if with_nulls {
        db.execute("INSERT INTO shapes VALUES (900, 'null-geom', NULL)").unwrap();
        db.execute("INSERT INTO shapes VALUES (901, NULL, NULL)").unwrap();
    }
    db.create_spatial_index("shapes", "geom").unwrap();
    db
}

fn corpus_db(seed: u64) -> Arc<SpatialDb> {
    corpus_db_with(seed, true)
}

const PREDICATES: [&str; 10] = [
    "ST_Equals",
    "ST_Disjoint",
    "ST_Intersects",
    "ST_Touches",
    "ST_Crosses",
    "ST_Within",
    "ST_Contains",
    "ST_Overlaps",
    "ST_Covers",
    "ST_CoveredBy",
];

/// Worker counts × batch sizes the vectorized path is swept over.
const WORKERS: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 3] = [1, 7, 1024];

/// Runs `sql` with the row path (vectorized off, serial) as the
/// reference, then asserts the vectorized path reproduces it exactly —
/// same `ResultSet` (content **and** order) or the same error message —
/// at every worker count and batch size.
fn assert_equivalent(db: &Arc<SpatialDb>, label: &str, sql: &str) {
    db.set_vectorized(false);
    db.set_workers(1);
    let reference = db.execute(sql);
    db.set_vectorized(true);
    for workers in WORKERS {
        for bs in BATCH_SIZES {
            db.set_workers(workers);
            db.set_batch_size(bs);
            let vectorized = db.execute(sql);
            match (&reference, &vectorized) {
                (Ok(r), Ok(v)) => assert_eq!(
                    r, v,
                    "{label}: row path vs vectorized (workers={workers}, batch={bs}) differ"
                ),
                (Err(r), Err(v)) => assert_eq!(
                    r.to_string(),
                    v.to_string(),
                    "{label}: error text differs (workers={workers}, batch={bs})"
                ),
                (r, v) => panic!(
                    "{label}: row path gave {} but vectorized (workers={workers}, batch={bs}) \
                     gave {}",
                    if r.is_ok() { "Ok" } else { "Err" },
                    if v.is_ok() { "Ok" } else { "Err" }
                ),
            }
        }
    }
    db.set_workers(1);
    db.set_batch_size(0);
}

/// Every named predicate over every ordered corpus pair — self-join,
/// column-column operands (the pairwise kernel) — plus NULL rows that
/// must vanish from every predicate's output on both paths.
#[test]
fn self_joins_identical_across_paths() {
    let db = corpus_db(0x9e3779b97f4a7c15);
    for pred in PREDICATES {
        let sql = format!("SELECT a.id, b.id FROM shapes a, shapes b WHERE {pred}(a.geom, b.geom)");
        assert_equivalent(&db, pred, &sql);
    }
}

/// Constant-probe filters (the column-vs-constant kernel) through the
/// spatial index scan, including a probe that overlaps nothing.
#[test]
fn constant_filters_identical_across_paths() {
    let db = corpus_db(0xdecafbad);
    let probes = [
        "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
        "POLYGON ((100 100, 101 100, 101 101, 100 101, 100 100))",
        "POINT (1 1)",
    ];
    for probe in probes {
        for pred in ["ST_Intersects", "ST_Disjoint", "ST_Within", "ST_Contains"] {
            let sql = format!(
                "SELECT id, tag FROM shapes WHERE {pred}(geom, \
                 ST_GeomFromText('{probe}'))"
            );
            assert_equivalent(&db, &format!("{pred}/{probe}"), &sql);
        }
    }
}

/// Mixed-dimension geometry collections make the DE-9IM refine error
/// out — but only for pairs whose envelopes intersect, so the prefilter
/// must not change *which* row errors first. Both paths must return the
/// same error text, and with prepared on and off.
#[test]
fn refine_errors_surface_identically() {
    let db = corpus_db(0xfeedface);
    // Envelope overlaps the whole grid corpus, so refine is reached.
    db.execute(
        "INSERT INTO shapes VALUES (800, 'mixed', ST_GeomFromText('GEOMETRYCOLLECTION (\
         POINT (1 1), LINESTRING (0 0, 6 6))'))",
    )
    .unwrap();
    for prepared in [true, false] {
        db.set_prepared(prepared);
        for pred in ["ST_Intersects", "ST_Touches", "ST_Equals"] {
            let sql = format!("SELECT a.id FROM shapes a, shapes b WHERE {pred}(a.geom, b.geom)");
            assert_equivalent(&db, &format!("{pred} prepared={prepared}"), &sql);
        }
        // A disjoint constant probe never refines against the mixed
        // collection: both paths must succeed despite the poison row.
        let ok = "SELECT COUNT(*) FROM shapes WHERE ST_Intersects(geom, \
                  ST_GeomFromText('POLYGON ((50 50, 51 50, 51 51, 50 51, 50 50))'))";
        db.set_vectorized(false);
        assert!(db.execute(ok).is_ok(), "row path must skip env-disjoint poison row");
        db.set_vectorized(true);
        assert!(db.execute(ok).is_ok(), "vectorized must skip env-disjoint poison row");
    }
    db.set_prepared(true);
}

/// The full micro suites on generated TIGER data: realistic queries
/// (index scans, joins, aggregates, analysis functions) must agree
/// between the two executors at every worker count and batch size.
#[test]
fn micro_suites_identical_across_paths() {
    let data = TigerDataset::generate(&TigerConfig { scale: 0.02, ..TigerConfig::default() });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("dataset loads");
    for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
        assert_equivalent(&db, q.id, &q.sql);
    }
}

/// Sorted string rows, for content comparison in the counter test.
fn sorted_rows(r: &ResultSet) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> =
        r.rows.iter().map(|row| row.iter().map(|v| v.to_string()).collect()).collect();
    rows.sort();
    rows
}

/// Deterministic counters are a function of the statement sequence
/// alone on the vectorized path: every (worker count, batch size)
/// combination must report byte-identical values, and the refine
/// counters shared with the row path (`refine_candidates`, `refine_hits`,
/// `refine_short_circuits`) must match it exactly. The vectorized-only
/// counters satisfy `prefilter_rejects + selvec_survivors ==
/// refine_candidates` on this all-spatial workload.
#[test]
fn deterministic_counters_stable_across_batch_shapes() {
    let suite: Vec<String> = PREDICATES
        .iter()
        .map(|p| format!("SELECT COUNT(*) FROM shapes a, shapes b WHERE {p}(a.geom, b.geom)"))
        .collect();
    let run = |vectorized: bool, workers: usize, bs: usize| {
        let db = corpus_db_with(0x5eed, false);
        db.set_vectorized(vectorized);
        db.set_workers(workers);
        db.set_batch_size(bs);
        let before = db.metrics_snapshot();
        let rows: Vec<_> = suite.iter().map(|sql| sorted_rows(&db.execute(sql).unwrap())).collect();
        (rows, db.metrics_snapshot().delta_since(&before).deterministic_counters())
    };

    let (ref_rows, row_counters) = run(false, 1, 1024);
    let (vec_rows, reference) = run(true, 1, 1024);
    assert_eq!(ref_rows, vec_rows, "row and vectorized paths disagree on results");

    let pick = |cs: &[(&str, u64)], name: &str| {
        cs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap()
    };
    for shared in ["refine_candidates", "refine_hits", "refine_short_circuits"] {
        assert_eq!(
            pick(&row_counters, shared),
            pick(&reference, shared),
            "{shared} differs between row and vectorized paths"
        );
    }
    assert_eq!(
        pick(&reference, "prefilter_rejects") + pick(&reference, "selvec_survivors"),
        pick(&reference, "refine_candidates"),
        "every vectorized candidate is either MBR-decided or refined"
    );
    assert!(pick(&reference, "prefilter_rejects") > 0, "corpus must exercise the prefilter");
    assert_eq!(pick(&row_counters, "prefilter_rejects"), 0, "row path must not prefilter");

    for workers in WORKERS {
        for bs in BATCH_SIZES {
            let (rows, counters) = run(true, workers, bs);
            assert_eq!(ref_rows, rows, "results differ at workers={workers}, batch={bs}");
            assert_eq!(
                reference, counters,
                "deterministic counters differ at workers={workers}, batch={bs}"
            );
        }
    }
}
