//! Golden-trace tests for the query-observability layer: per-stage trace
//! shape and engine-counter invariants for every DE-9IM predicate family
//! and for a macro scenario. Assertions are about counter presence,
//! ordering and arithmetic relations — never about timings, which vary
//! run to run.

use jackpine::bench::load_dataset;
use jackpine::bench::macrobench::{all_scenarios, ScenarioConfig};
use jackpine::bench::micro::topo_suite;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::obs::{Stage, DETERMINISTIC_COUNTERS, SCHEDULING_COUNTERS};
use jackpine::storage::Value;
use std::sync::Arc;

const SCALE: f64 = 0.02;

fn loaded_db() -> (TigerDataset, Arc<SpatialDb>) {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("dataset loads");
    db.set_workers(1);
    (data, db)
}

/// A tiny hand-built table with a spatial index, for tests that need
/// full control over index lifecycle.
fn tiny_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({i} {i})'))"))
            .unwrap();
    }
    db.create_spatial_index("pts", "geom").unwrap();
    db.set_workers(1);
    db
}

/// The canonical counter vocabulary is a frozen API surface: renaming or
/// reordering a counter breaks downstream trace consumers, so the full
/// lists are pinned here verbatim.
#[test]
fn counter_names_are_golden() {
    assert_eq!(
        DETERMINISTIC_COUNTERS,
        [
            "queries",
            "index_probes",
            "index_candidates",
            "index_nodes_visited",
            "refine_candidates",
            "refine_hits",
            "refine_short_circuits",
            "prefilter_rejects",
            "selvec_survivors",
            "heap_rows_fetched",
            "wal_appends",
            "wal_fsyncs",
        ]
    );
    assert_eq!(
        SCHEDULING_COUNTERS,
        [
            "plan_cache_hits",
            "plan_cache_misses",
            "prepared_cache_hits",
            "prepared_cache_misses",
            "prepared_cache_evictions",
            "morsels_dispatched",
            "batches_dispatched",
            "group_commit_batches",
            "group_commit_size",
        ]
    );
    assert_eq!(
        Stage::ALL.map(Stage::name),
        ["parse", "plan", "index_probe", "prefilter", "refine", "materialize"]
    );
}

/// Every topological micro query (one per DE-9IM predicate family) must
/// produce a well-formed trace: exactly one statement, stages reported
/// in pipeline order starting with parse/plan, and candidate counts that
/// never undershoot hit counts.
#[test]
fn golden_traces_for_every_predicate_family() {
    let (data, db) = loaded_db();
    for q in topo_suite(&data) {
        let (result, trace) = db.execute_traced(&q.sql).expect(q.id);
        assert_eq!(trace.counter("queries"), 1, "{}: one statement, one query", q.id);
        assert_eq!(trace.rows, result.rows.len(), "{}: trace row count", q.id);

        let stages = trace.stage_names();
        assert!(
            stages.starts_with(&["parse", "plan"]),
            "{}: trace must begin with parse, plan — got {stages:?}",
            q.id
        );
        // Stage order is the canonical pipeline order (subsequence of
        // Stage::ALL, no duplicates, no inversions).
        let canonical: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let positions: Vec<usize> = stages
            .iter()
            .map(|s| canonical.iter().position(|c| c == s).expect("known stage"))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{}: stage order {stages:?}", q.id);

        // The filter-and-refine invariant: hits are a subset of
        // candidates, and the index can't emit more candidates than it
        // inspects entries for.
        assert!(
            trace.counter("refine_candidates") >= trace.counter("refine_hits"),
            "{}: refine candidates {} < hits {}",
            q.id,
            trace.counter("refine_candidates"),
            trace.counter("refine_hits")
        );
        if trace.counter("index_probes") > 0 {
            assert!(
                trace.counter("index_nodes_visited") > 0,
                "{}: probes without node visits",
                q.id
            );
        }

        // Vectorized-filter arithmetic: every row the prefilter decided
        // plus every selection-vector survivor was a refine candidate.
        // (Generic, non-vectorized filters add candidates without
        // prefilter counts, hence `<=`.)
        assert!(
            trace.counter("prefilter_rejects") + trace.counter("selvec_survivors")
                <= trace.counter("refine_candidates"),
            "{}: prefilter accounting exceeds refine candidates",
            q.id
        );
    }
}

/// The single-table constant-window queries are planned through the
/// spatial index, so their traces must show index work.
#[test]
fn indexed_window_queries_report_probes() {
    let (data, db) = loaded_db();
    let indexed = ["T01", "T04", "T06", "T16"];
    for q in topo_suite(&data).iter().filter(|q| indexed.contains(&q.id)) {
        let (_, trace) = db.execute_traced(&q.sql).expect(q.id);
        assert!(trace.counter("index_probes") > 0, "{}: expected an index probe", q.id);
        assert!(trace.counter("index_nodes_visited") > 0, "{}: expected node visits", q.id);
        assert!(
            trace.stage_names().contains(&"index_probe"),
            "{}: index_probe stage missing from {:?}",
            q.id,
            trace.stage_names()
        );
    }
}

/// Dropping the index flips the plan back to a sequential scan: probe
/// counters go to zero while the answer stays identical.
#[test]
fn index_probes_zero_after_drop_index() {
    let db = tiny_db();
    let sql = "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, ST_MakeEnvelope(-1, -1, 10.5, 10.5))";

    let (with_index, trace) = db.execute_traced(sql).unwrap();
    assert_eq!(with_index.scalar(), Some(&Value::Int(11)));
    assert!(trace.counter("index_probes") > 0, "indexed run must probe");

    db.drop_spatial_index("pts", "geom").unwrap();
    let (without_index, trace) = db.execute_traced(sql).unwrap();
    assert_eq!(without_index, with_index, "answer must not depend on the index");
    assert_eq!(trace.counter("index_probes"), 0, "no index left to probe");
    assert_eq!(trace.counter("index_nodes_visited"), 0);
    assert!(!trace.stage_names().contains(&"index_probe"));

    // Dropping twice is an error; the ordered variant enforces the same.
    assert!(db.drop_spatial_index("pts", "geom").is_err());
    assert!(db.drop_ordered_index("pts", "id").is_err());
}

/// A macro scenario traced step by step: every step is a statement with
/// a parse stage, and the per-step deltas sum to the engine-wide delta.
#[test]
fn macro_scenario_traces_are_consistent() {
    let data = TigerDataset::generate(&TigerConfig { scale: SCALE, ..TigerConfig::default() });
    let db = {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        load_dataset(&db, &data).expect("dataset loads");
        db.set_workers(1);
        db
    };
    let config = ScenarioConfig { seed: 0xbead, sessions: 1 };
    let scenario = all_scenarios(&data, &config)
        .into_iter()
        .find(|s| s.id == "M1")
        .expect("map-browsing scenario exists");

    let before = db.metrics_snapshot();
    let mut traced_queries = 0u64;
    let mut traced_probes = 0u64;
    for (label, sql) in &scenario.steps {
        let (_, trace) = db.execute_traced(sql).expect(label);
        assert_eq!(trace.counter("queries"), 1, "{label}: one query per step");
        assert!(trace.stage_names().contains(&"parse"), "{label}: parse stage missing");
        traced_queries += trace.counter("queries");
        traced_probes += trace.counter("index_probes");
    }
    let delta = db.metrics_snapshot().delta_since(&before);
    assert_eq!(delta.counter("queries"), traced_queries, "per-step deltas must sum");
    assert_eq!(delta.counter("index_probes"), traced_probes);
    assert_eq!(traced_queries, scenario.steps.len() as u64);
}

/// EXPLAIN ANALYZE through plain SQL: executes the query and renders the
/// trace as the result set.
#[test]
fn explain_analyze_renders_trace() {
    let db = tiny_db();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM pts WHERE ST_Within(geom, \
             ST_MakeEnvelope(0, 0, 5, 5))",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["analyze"]);
    let text: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
    assert!(text.contains("total:"), "analyze output was:\n{text}");
    assert!(text.contains("stage plan"), "analyze output was:\n{text}");
    assert!(text.contains("counter index_probes"), "analyze output was:\n{text}");
    assert!(text.contains("index probes:"), "probe summary missing:\n{text}");
    assert!(text.contains("nodes visited"), "probe summary missing:\n{text}");

    // Only SELECT can be analyzed.
    assert!(db.execute("EXPLAIN ANALYZE DELETE FROM pts").is_err());
}

/// WAL counters: with durability attached, every logged statement appends
/// a record, visible in the per-query trace.
#[test]
fn wal_appends_show_in_traces() {
    let dir = std::env::temp_dir().join(format!("jackpine_obs_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.set_durability(Some(&dir), jackpine::engine::DurabilityOptions::default()).unwrap();
    db.execute("CREATE TABLE t (id BIGINT)").unwrap();
    let (_, trace) = db.execute_traced("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(trace.counter("wal_appends"), 2, "one WAL record per inserted row");
    let (_, trace) = db.execute_traced("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(trace.counter("wal_appends"), 0, "reads append nothing");
    db.set_durability(None, jackpine::engine::DurabilityOptions::default()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
