//! Ground-truth integration tests: SQL answers on the benchmark dataset
//! must equal brute-force computation with the geometry/topology crates
//! directly — the SQL engine, planner and indexes may not change answers.

use jackpine::bench::load_dataset;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::geom::algorithms as alg;
use jackpine::geom::{wkt, Geometry};
use jackpine::storage::Value;
use jackpine::topo;
use std::sync::Arc;

fn setup() -> (TigerDataset, Arc<SpatialDb>) {
    let data = TigerDataset::generate(&TigerConfig { seed: 31, scale: 0.03 });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("load");
    (data, db)
}

fn scalar_i64(db: &Arc<SpatialDb>, sql: &str) -> i64 {
    db.execute(sql).expect("query").scalar().and_then(Value::as_i64).expect("int scalar")
}

fn scalar_f64(db: &Arc<SpatialDb>, sql: &str) -> f64 {
    db.execute(sql).expect("query").scalar().and_then(Value::as_f64).expect("float scalar")
}

#[test]
fn crosses_count_matches_brute_force() {
    let (data, db) = setup();
    let river = data.areawater.iter().find(|w| w.name.ends_with("RIVER")).expect("river exists");
    let river_geom = Geometry::Polygon(river.geom.clone());
    let want = data
        .roads
        .iter()
        .filter(|r| {
            topo::crosses(&Geometry::LineString(r.geom.clone()), &river_geom).expect("crosses")
        })
        .count() as i64;
    let got = scalar_i64(
        &db,
        &format!(
            "SELECT COUNT(*) FROM roads WHERE ST_Crosses(geom, ST_GeomFromText('{}'))",
            wkt::write(&river_geom)
        ),
    );
    assert_eq!(got, want);
    assert!(want > 0, "the river should cross some roads at this scale");
}

#[test]
fn county_touch_pairs_match_brute_force() {
    let (data, db) = setup();
    let mut want = 0i64;
    for (i, a) in data.counties.iter().enumerate() {
        for b in &data.counties[i + 1..] {
            if topo::touches(&Geometry::Polygon(a.geom.clone()), &Geometry::Polygon(b.geom.clone()))
                .expect("touches")
            {
                want += 1;
            }
        }
    }
    let got = scalar_i64(
        &db,
        "SELECT COUNT(*) FROM county a JOIN county b ON ST_Touches(a.geom, b.geom) \
         WHERE a.id < b.id",
    );
    assert_eq!(got, want);
    assert!(want > 0);
}

#[test]
fn total_road_length_matches_brute_force() {
    let (data, db) = setup();
    let want: f64 = data.roads.iter().map(|r| r.geom.length()).sum();
    let got = scalar_f64(&db, "SELECT SUM(ST_Length(geom)) FROM roads");
    assert!((got - want).abs() < want * 1e-12, "SQL {got} vs direct {want}");
}

#[test]
fn total_landmark_area_matches_brute_force() {
    let (data, db) = setup();
    let want: f64 = data.arealm.iter().map(|a| a.geom.area()).sum();
    let got = scalar_f64(&db, "SELECT SUM(ST_Area(geom)) FROM arealm");
    assert!((got - want).abs() < want * 1e-12);
}

#[test]
fn points_within_window_match_brute_force() {
    let (data, db) = setup();
    let window =
        wkt::parse("POLYGON ((-102 28, -97 28, -97 33, -102 33, -102 28))").expect("window wkt");
    let want = data
        .pointlm
        .iter()
        .filter(|p| topo::within(&Geometry::Point(p.geom), &window).expect("within"))
        .count() as i64;
    let got = scalar_i64(
        &db,
        &format!(
            "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, ST_GeomFromText('{}'))",
            wkt::write(&window)
        ),
    );
    assert_eq!(got, want);
    assert!(want > 0, "central window should contain landmarks");
}

#[test]
fn overlap_pairs_and_intersection_area_match_brute_force() {
    let (data, db) = setup();
    let mut pairs = 0i64;
    let mut area_sum = 0.0f64;
    for a in &data.arealm {
        let ga = Geometry::Polygon(a.geom.clone());
        for w in &data.areawater {
            let gw = Geometry::Polygon(w.geom.clone());
            if topo::overlaps(&ga, &gw).expect("overlaps") {
                pairs += 1;
                area_sum += alg::area(&alg::intersection(&ga, &gw).expect("intersection computes"));
            }
        }
    }
    let got_pairs = scalar_i64(
        &db,
        "SELECT COUNT(*) FROM arealm a JOIN areawater b ON ST_Overlaps(a.geom, b.geom)",
    );
    assert_eq!(got_pairs, pairs);
    if pairs > 0 {
        let got_area = scalar_f64(
            &db,
            "SELECT SUM(ST_Area(ST_Intersection(a.geom, b.geom))) FROM arealm a \
             JOIN areawater b ON ST_Overlaps(a.geom, b.geom)",
        );
        assert!(
            (got_area - area_sum).abs() < area_sum.max(1e-9) * 1e-9,
            "SQL {got_area} vs direct {area_sum}"
        );
    }
}

#[test]
fn nearest_road_matches_brute_force() {
    let (data, db) = setup();
    let q = jackpine::geom::Coord::new(-100.0, 30.0);
    // Brute force by exact geometry distance.
    let want = data
        .roads
        .iter()
        .min_by(|a, b| {
            let pa = Geometry::Point(jackpine::geom::Point::from_coord(q).unwrap());
            let da = alg::distance(&Geometry::LineString(a.geom.clone()), &pa);
            let dbv = alg::distance(&Geometry::LineString(b.geom.clone()), &pa);
            da.total_cmp(&dbv)
        })
        .expect("roads non-empty")
        .id;
    let r = db
        .execute(
            "SELECT id FROM roads \
             ORDER BY ST_Distance(geom, ST_GeomFromText('POINT (-100 30)')) LIMIT 1",
        )
        .expect("knn query");
    assert_eq!(r.rows[0][0], Value::Int(want));
}

#[test]
fn group_by_category_matches_brute_force() {
    let (data, db) = setup();
    let r = db
        .execute("SELECT category, COUNT(*) FROM arealm GROUP BY category ORDER BY 1")
        .expect("group query");
    use std::collections::BTreeMap;
    let mut want: BTreeMap<&str, i64> = BTreeMap::new();
    for a in &data.arealm {
        *want.entry(a.category.as_str()).or_default() += 1;
    }
    let got: Vec<(String, i64)> =
        r.rows.iter().map(|row| (row[0].to_string(), row[1].as_i64().expect("count"))).collect();
    let want: Vec<(String, i64)> = want.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    assert_eq!(got, want);
}
