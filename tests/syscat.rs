//! System-catalog tests: the `jp_*` virtual tables answer ordinary SQL
//! through the normal planner and executor. Golden column sets, WHERE /
//! ORDER BY / LIMIT / aggregate composition, EXPLAIN ANALYZE on
//! introspection queries, freshness across the plan cache, and the
//! wait-state/gauge surfaces behind `jp_metrics`. Assertions are about
//! shapes and counts — never about timings.

use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::obs::{lint_prometheus_text, DETERMINISTIC_COUNTERS, GAUGES, SCHEDULING_COUNTERS};
use jackpine::storage::Value;
use std::sync::Arc;
use std::time::Duration;

fn tiny_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({i} {i})'))"))
            .unwrap();
    }
    db.create_spatial_index("pts", "geom").unwrap();
    db.set_workers(1);
    db
}

fn count(db: &Arc<SpatialDb>, sql: &str) -> i64 {
    match db.execute(sql).unwrap().scalar().unwrap() {
        Value::Int(n) => *n,
        other => panic!("expected integer scalar from {sql}, got {other:?}"),
    }
}

/// Every system table answers a plain `SELECT *` and its column set is
/// frozen: these names are the catalog's public schema (DESIGN.md
/// "System catalog"), so renames break downstream dashboards.
#[test]
fn system_table_schemas_are_golden() {
    let db = tiny_db();
    let golden: &[(&str, &[&str])] = &[
        (
            "jp_stat_statements",
            &["fingerprint", "statement", "calls", "errors", "rows", "mean_ms", "p95_ms"],
        ),
        (
            "jp_flight_recorder",
            &[
                "seq",
                "statement",
                "total_ms",
                "rows",
                "parse_ms",
                "plan_ms",
                "index_probe_ms",
                "prefilter_ms",
                "refine_ms",
                "materialize_ms",
                "index_probes",
                "refine_hits",
            ],
        ),
        (
            "jp_slow_queries",
            &[
                "seq",
                "statement",
                "total_ms",
                "rows",
                "parse_ms",
                "plan_ms",
                "index_probe_ms",
                "prefilter_ms",
                "refine_ms",
                "materialize_ms",
                "index_probes",
                "refine_hits",
            ],
        ),
        ("jp_metrics", &["name", "kind", "value", "count", "sum", "max", "p50", "p99"]),
        ("jp_metrics_history", &["seq", "age_ms", "name", "kind", "value"]),
        ("jp_sessions", &["session_id", "statement", "elapsed_ms"]),
        ("jp_snapshots", &["generation", "readers", "age_ms"]),
        (
            "jp_wal",
            &[
                "attached",
                "generation",
                "sync_each_append",
                "wal_appends",
                "wal_fsyncs",
                "group_commit_batches",
                "group_commit_size",
            ],
        ),
        (
            "jp_buffer_pool",
            &[
                "policy",
                "capacity_frames",
                "resident_frames",
                "pinned_frames",
                "pin_hits",
                "cold_pins",
                "evictions",
                "dirty_writebacks",
            ],
        ),
    ];
    for (table, cols) in golden {
        let r = db.execute(&format!("SELECT * FROM {table}")).unwrap();
        assert_eq!(r.columns, *cols, "{table} schema drifted");
    }
}

/// The catalog name space is case-insensitive like the rest of the
/// planner's table resolution.
#[test]
fn system_tables_resolve_case_insensitively() {
    let db = tiny_db();
    let lower = db.execute("SELECT name FROM jp_metrics").unwrap();
    let upper = db.execute("SELECT name FROM JP_METRICS").unwrap();
    assert_eq!(lower.rows.len(), upper.rows.len());
}

/// `jp_metrics` carries the whole registry: every canonical counter and
/// gauge appears exactly once, kinds are right, and filtering works.
#[test]
fn metrics_table_covers_counters_and_gauges() {
    let db = tiny_db();
    let n_counters = count(&db, "SELECT COUNT(*) FROM jp_metrics WHERE kind = 'counter'");
    assert_eq!(
        n_counters as usize,
        DETERMINISTIC_COUNTERS.len() + SCHEDULING_COUNTERS.len(),
        "every canonical counter shows as one row"
    );
    let n_gauges = count(&db, "SELECT COUNT(*) FROM jp_metrics WHERE kind = 'gauge'");
    assert_eq!(n_gauges as usize, GAUGES.len());

    // The engine has executed statements, so the queries counter is live.
    let queries = count(&db, "SELECT value FROM jp_metrics WHERE name = 'queries'");
    assert!(queries > 20, "tiny_db ran >20 statements, jp_metrics says {queries}");
}

/// Writer-lock wait histograms: every INSERT passes the insert txn-wait
/// site, so its histogram count matches the statement count even when
/// the lock was uncontended (zero wait is still a sample).
#[test]
fn txn_wait_histograms_surface_through_jp_metrics() {
    let db = tiny_db();
    let r =
        db.execute("SELECT count, p99 FROM jp_metrics WHERE name = 'txn_wait_insert_ns'").unwrap();
    assert_eq!(r.rows.len(), 1);
    let Value::Int(samples) = r.rows[0][0] else { panic!("count must be integer") };
    assert_eq!(samples, 20, "one wait sample per INSERT");
    let ddl = count(&db, "SELECT count FROM jp_metrics WHERE name = 'txn_wait_ddl_ns'");
    assert!(ddl >= 2, "CREATE TABLE + CREATE INDEX record ddl waits, got {ddl}");
    // Snapshot pins: every recorded SELECT pins and releases one.
    let pins = count(&db, "SELECT count FROM jp_metrics WHERE name = 'snapshot_pin_ns'");
    assert!(pins > 0, "snapshot pin lifetimes must be recorded");
}

/// WHERE, ORDER BY, LIMIT and aggregates compose on system tables
/// because they run through the ordinary executor.
#[test]
fn where_order_by_limit_compose_on_system_tables() {
    let db = tiny_db();
    let r = db
        .execute("SELECT name FROM jp_metrics WHERE kind = 'counter' ORDER BY name DESC LIMIT 3")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    let mut sorted = names.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(names, sorted, "ORDER BY DESC must hold");
}

/// `jp_stat_statements` aggregates by fingerprint: same-shape statements
/// with different literals collapse into one row whose call count adds.
#[test]
fn stat_statements_aggregate_by_shape() {
    let db = tiny_db();
    for i in 0..5 {
        db.execute(&format!("SELECT COUNT(*) FROM pts WHERE id = {i}")).unwrap();
    }
    let r = db
        .execute("SELECT statement, calls FROM jp_stat_statements ORDER BY calls DESC LIMIT 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let Value::Int(calls) = r.rows[0][1] else { panic!("calls must be integer") };
    assert!(calls >= 5, "top shape has at least the 5 identical probes, got {calls}");
}

/// The flight recorder and slow log are queryable, and a zero threshold
/// turns every statement into a slow query.
#[test]
fn flight_recorder_and_slow_log_answer_sql() {
    let db = tiny_db();
    let traces = count(&db, "SELECT COUNT(*) FROM jp_flight_recorder");
    assert!(traces > 0, "tiny_db left traces in the ring");

    db.set_slow_query_threshold(Duration::ZERO);
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    let r = db
        .execute("SELECT statement, total_ms FROM jp_slow_queries ORDER BY seq DESC LIMIT 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Text("SELECT COUNT(*) FROM pts".into()));
}

/// System-table reads must see live state even though SELECT plans are
/// cached: the cache is bypassed for any statement touching a `jp_`
/// table, so re-running the same introspection SQL reflects new traffic.
#[test]
fn introspection_queries_bypass_the_plan_cache() {
    let db = tiny_db();
    let sql = "SELECT value FROM jp_metrics WHERE name = 'queries'";
    let before = count(&db, sql);
    for _ in 0..4 {
        db.execute("SELECT COUNT(*) FROM pts").unwrap();
    }
    let after = count(&db, sql);
    assert!(after >= before + 4, "stale plan cache: {before} -> {after}");
}

/// The session registry shows in-flight statements — including the
/// introspection query itself, which registered before planning.
#[test]
fn sessions_table_shows_the_running_statement() {
    let db = tiny_db();
    let r = db.execute("SELECT statement FROM jp_sessions").unwrap();
    assert!(
        r.rows.iter().any(|row| row[0].to_string().contains("jp_sessions")),
        "the introspection query must see itself in-flight: {:?}",
        r.rows
    );
}

/// An idle engine pins no snapshots: the statement's own pin is taken
/// after `jp_snapshots` materializes.
#[test]
fn snapshots_table_is_empty_when_idle() {
    let db = tiny_db();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM jp_snapshots"), 0);
}

/// `jp_metrics_history`: nothing retained until the sampling interval
/// allows it; with a zero interval every statement leaves a sample.
#[test]
fn metrics_history_accumulates_at_zero_interval() {
    let db = tiny_db();
    db.set_metrics_history_interval(Duration::ZERO);
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    db.execute("SELECT COUNT(*) FROM pts WHERE id = 1").unwrap();
    let rows = count(&db, "SELECT COUNT(*) FROM jp_metrics_history");
    assert!(rows > 0, "zero-interval history retained nothing");
    let gauges = count(&db, "SELECT COUNT(*) FROM jp_metrics_history WHERE kind = 'gauge'");
    assert!(gauges > 0, "history points carry gauge levels");
}

/// `jp_wal` reflects durability state: detached shows NULLs, attached
/// shows the live generation and append counters.
#[test]
fn wal_table_tracks_durability_state() {
    let db = tiny_db();
    let r = db.execute("SELECT attached, generation FROM jp_wal").unwrap();
    assert_eq!(r.rows.len(), 1, "jp_wal is single-row");
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);

    let dir = std::env::temp_dir().join(format!("jackpine_syscat_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SpatialDb::set_durability(&db, Some(&dir), jackpine::engine::DurabilityOptions::default())
        .unwrap();
    db.execute("INSERT INTO pts VALUES (100, ST_GeomFromText('POINT (100 100)'))").unwrap();
    let r = db.execute("SELECT attached, wal_appends FROM jp_wal").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let Value::Int(appends) = r.rows[0][1] else { panic!("wal_appends must be integer") };
    assert!(appends >= 1, "the INSERT appended to the WAL");
    SpatialDb::set_durability(&db, None, jackpine::engine::DurabilityOptions::default()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `jp_buffer_pool` reflects pool state: unbounded by default, and once
/// bounded it reports the active policy, the frame budget, and live
/// pin/eviction counters that a cold re-scan advances.
#[test]
fn buffer_pool_table_tracks_pool_state() {
    let db = tiny_db();
    let r = db
        .execute("SELECT policy, capacity_frames, pinned_frames FROM jp_buffer_pool")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "jp_buffer_pool is single-row");
    assert_eq!(r.rows[0][0], Value::Text("clock".into()));
    assert_eq!(r.rows[0][1], Value::Int(0), "default pool is unbounded");
    assert_eq!(r.rows[0][2], Value::Int(0), "no pins held between statements");

    db.set_pool_bytes(8 * 1024 * 1024);
    SpatialDb::set_replacement_policy(&db, jackpine::storage::ReplacementPolicy::LruK);
    db.clear_caches();
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    let r = db
        .execute("SELECT policy, capacity_frames, cold_pins FROM jp_buffer_pool")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Text("lruk".into()));
    assert_eq!(r.rows[0][1], Value::Int(1024), "8 MiB of 8 KiB frames");
    let Value::Int(cold) = r.rows[0][2] else { panic!("cold_pins must be integer") };
    assert!(cold > 0, "the cold scan faulted pages in");
}

/// EXPLAIN ANALYZE works on introspection queries: the catalog resolves
/// through the normal planner, so the analyze path needs no special case.
#[test]
fn explain_analyze_works_on_system_tables() {
    let db = tiny_db();
    let r = db.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM jp_metrics").unwrap();
    assert_eq!(r.columns, vec!["analyze"]);
    let text: String = r.rows.iter().map(|row| row[0].to_string() + "\n").collect();
    assert!(text.contains("total:"), "analyze output was:\n{text}");
    assert!(text.contains("stage plan"), "analyze output was:\n{text}");
}

/// The `jp_` prefix is reserved: user tables cannot shadow the catalog.
#[test]
fn create_table_rejects_the_jp_prefix() {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    let err = db.execute("CREATE TABLE jp_mine (id BIGINT)").expect_err("jp_ is reserved");
    assert!(format!("{err}").contains("reserved"), "unexpected error: {err}");
    // Unknown jp_ names in FROM still give the ordinary not-found error.
    assert!(db.execute("SELECT * FROM jp_no_such_table").is_err());
}

/// The connector surfaces Prometheus text, and the export lints clean —
/// the same check `prom-lint` runs over `repro --prom` output in CI.
#[test]
fn connector_prometheus_text_lints_clean() {
    let db = tiny_db();
    let conn: &dyn SpatialConnector = &db;
    let text = conn.prometheus_text().expect("engine exports metrics");
    assert!(text.contains("# TYPE jackpine_queries_total counter"), "{text}");
    assert!(text.contains("jackpine_txn_wait_insert_ns_count"), "wait histograms export");
    assert!(text.contains("# TYPE jackpine_active_snapshots gauge"), "gauges export");
    assert!(text.contains("# TYPE jackpine_pool_capacity_frames gauge"), "pool gauges export");
    assert!(text.contains("jackpine_pool_cold_pins"), "pool counters surface as gauges");
    let errors = lint_prometheus_text(&text);
    assert!(errors.is_empty(), "connector export must lint clean: {errors:?}");
}
