//! Shared generators for the randomized integration tests: random (but
//! always *valid*) geometries built on the in-tree seeded PRNG, so the
//! suite needs no external crates and every run is reproducible.

#![allow(dead_code)]

use jackpine::datagen::rng::Rng;
use jackpine::geom::{Coord, Geometry, LineString, Point, Polygon, Ring};

/// Randomized-test iteration count: `base` normally, 8x under the
/// `slow-tests` feature (`cargo test --features slow-tests`).
pub fn cases(base: usize) -> usize {
    if cfg!(feature = "slow-tests") {
        base * 8
    } else {
        base
    }
}

/// A fresh deterministic generator for one test, keyed by test name so
/// suites don't share streams.
pub fn test_rng(name: &str) -> Rng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Rng::seed_from_u64(h)
}

/// A finite coordinate within a benchmark-like range.
pub fn coord(rng: &mut Rng) -> Coord {
    Coord::new(rng.gen_range(-1000.0..1000.0f64), rng.gen_range(-1000.0..1000.0f64))
}

/// A random point geometry.
pub fn point(rng: &mut Rng) -> Geometry {
    Geometry::Point(Point::from_coord(coord(rng)).expect("finite coord"))
}

/// A random polyline with 2–10 distinct vertices.
pub fn linestring(rng: &mut Rng) -> Geometry {
    let mut pts = vec![coord(rng)];
    let steps = rng.gen_range(1..9usize);
    for _ in 0..steps {
        let last = *pts.last().expect("non-empty");
        let (dx, dy) = (rng.gen_range(-10.0..10.0f64), rng.gen_range(-10.0..10.0f64));
        // Guarantee distinct consecutive vertices.
        pts.push(Coord::new(last.x + dx + 0.001, last.y + dy + 0.001));
    }
    Geometry::LineString(LineString::new(pts).expect("constructed distinct"))
}

/// A random star-shaped (hence simple and valid) polygon geometry.
pub fn polygon(rng: &mut Rng) -> Geometry {
    Geometry::Polygon(star_polygon(rng))
}

/// A star polygon: sorted angles with positive radii around a centre.
pub fn star_polygon(rng: &mut Rng) -> Polygon {
    let center = coord(rng);
    let n = rng.gen_range(3..12usize);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut pts: Vec<Coord> = Vec::with_capacity(n + 1);
    for k in 0..n {
        let r = rng.gen_range(0.5..10.0f64);
        let theta = phase + std::f64::consts::TAU * k as f64 / n as f64;
        pts.push(Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin()));
    }
    pts.push(pts[0]);
    Polygon::new(Ring::new(pts).expect("star ring is simple"), Vec::new())
}

/// Any of the three basic geometry kinds.
pub fn geometry(rng: &mut Rng) -> Geometry {
    match rng.gen_range(0..3usize) {
        0 => point(rng),
        1 => linestring(rng),
        _ => polygon(rng),
    }
}
