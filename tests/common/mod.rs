//! Shared generators for the integration and property tests: random (but
//! always *valid*) geometries built from proptest primitives.

#![allow(dead_code)]

use jackpine::geom::{Coord, Geometry, LineString, Point, Polygon, Ring};
use proptest::prelude::*;

/// A finite coordinate within a benchmark-like range.
pub fn coord() -> impl Strategy<Value = Coord> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Coord::new(x, y))
}

/// A random point geometry.
pub fn point() -> impl Strategy<Value = Geometry> {
    coord().prop_map(|c| Geometry::Point(Point::from_coord(c).expect("finite coord")))
}

/// A random polyline with 2–10 distinct vertices.
pub fn linestring() -> impl Strategy<Value = Geometry> {
    (coord(), proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..9)).prop_map(
        |(start, deltas)| {
            let mut pts = vec![start];
            for (dx, dy) in deltas {
                let last = *pts.last().expect("non-empty");
                // Guarantee distinct consecutive vertices.
                let c = Coord::new(last.x + dx + 0.001, last.y + dy + 0.001);
                pts.push(c);
            }
            Geometry::LineString(LineString::new(pts).expect("constructed distinct"))
        },
    )
}

/// A random star-shaped (hence simple and valid) polygon: sorted angles
/// with positive radii around a centre.
pub fn polygon() -> impl Strategy<Value = Geometry> {
    star_polygon().prop_map(Geometry::Polygon)
}

/// The underlying star-polygon strategy.
pub fn star_polygon() -> impl Strategy<Value = Polygon> {
    (
        coord(),
        proptest::collection::vec(0.5..10.0f64, 3..12),
        0.0..std::f64::consts::TAU,
    )
        .prop_map(|(center, radii, phase)| {
            let n = radii.len();
            let mut pts: Vec<Coord> = Vec::with_capacity(n + 1);
            for (k, r) in radii.iter().enumerate() {
                let theta = phase + std::f64::consts::TAU * k as f64 / n as f64;
                pts.push(Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin()));
            }
            pts.push(pts[0]);
            Polygon::new(Ring::new(pts).expect("star ring is simple"), Vec::new())
        })
}

/// Any of the three basic geometry kinds.
pub fn geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![point(), linestring(), polygon()]
}
