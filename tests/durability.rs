//! Crash-safety suite: fault-injection sweeps over the snapshot and WAL
//! persistence paths.
//!
//! The contract under test: for a save or WAL append killed (truncated)
//! or bit-flipped at *any* byte offset, recovery returns either the
//! pre-crash or the post-crash consistent state — never a panic, an
//! OOM-sized allocation, or a silently short table. The fast mode sweeps
//! a seeded stride of offsets; `--features slow-tests` sweeps every
//! offset.

mod common;

use jackpine::engine::failpoint::{apply_failpoint, Failpoint, FailpointFile};
use jackpine::engine::wal::{wal_header, WalRecord};
use jackpine::engine::{
    DurabilityOptions, EngineError, EngineProfile, SpatialDb, SNAPSHOT_FILE, WAL_FILE,
};
use jackpine::storage::{ColumnDef, DataType, Value};
use std::io::Write;
use std::sync::Arc;

/// A unique scratch path under the system temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("jackpine-durability-{name}-{}", std::process::id()));
    p
}

/// A fresh scratch directory (removing any leftover from a dead run).
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = scratch(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Offset stride for fault sweeps: every offset under `slow-tests`, a
/// coprime stride otherwise (hits varied alignments, not just one byte
/// lane).
fn sweep_step() -> usize {
    if cfg!(feature = "slow-tests") {
        1
    } else {
        7
    }
}

/// A database with two tables, geometry, NULLs and both index kinds —
/// enough structure that every section of the file format is exercised.
fn sample_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pois (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
    for i in 0..30 {
        db.execute(&format!(
            "INSERT INTO pois VALUES ({i}, 'p{i}', ST_GeomFromText('POINT ({i} {i})'))"
        ))
        .unwrap();
    }
    db.execute("INSERT INTO pois VALUES (999, NULL, NULL)").unwrap();
    db.execute("CREATE TABLE tags (k TEXT, v TEXT)").unwrap();
    db.execute("INSERT INTO tags VALUES ('a', '1'), ('b', '2')").unwrap();
    db.create_spatial_index("pois", "geom").unwrap();
    db.create_ordered_index("pois", "name").unwrap();
    db
}

// ---------------------------------------------------------------------------
// Snapshot faults
// ---------------------------------------------------------------------------

#[test]
fn every_strict_prefix_of_a_snapshot_is_rejected() {
    let bytes = sample_db().snapshot_bytes().unwrap();
    assert!(SpatialDb::open_bytes(&bytes).is_ok(), "the full image must load");
    for offset in (0..bytes.len()).step_by(sweep_step()) {
        let torn = apply_failpoint(&bytes, Failpoint::Truncate { offset: offset as u64 });
        assert_eq!(torn.len(), offset);
        match SpatialDb::open_bytes(&torn) {
            Err(EngineError::Persist(_)) => {}
            Err(other) => panic!("prefix {offset}: wrong error kind {other:?}"),
            Ok(_) => panic!("prefix {offset} of {} loaded as a database", bytes.len()),
        }
    }
}

#[test]
fn every_bit_flip_in_a_snapshot_is_rejected() {
    let bytes = sample_db().snapshot_bytes().unwrap();
    for offset in (0..bytes.len()).step_by(sweep_step()) {
        // One varying bit per offset in fast mode, all eight in slow.
        let bits: &[u8] = if cfg!(feature = "slow-tests") {
            &[0, 1, 2, 3, 4, 5, 6, 7]
        } else {
            &[(offset % 8) as u8]
        };
        for &bit in bits {
            let flipped =
                apply_failpoint(&bytes, Failpoint::BitFlip { offset: offset as u64, bit });
            assert_eq!(flipped.len(), bytes.len());
            match SpatialDb::open_bytes(&flipped) {
                Err(EngineError::Persist(_)) => {}
                Err(other) => panic!("flip at {offset}.{bit}: wrong error kind {other:?}"),
                Ok(_) => panic!("flip at byte {offset} bit {bit} went undetected"),
            }
        }
    }
}

#[test]
fn crash_during_save_never_shadows_the_previous_file() {
    let dir = scratch_dir("atomic-save");
    let path = dir.join("db.jkpn");

    // State A on disk.
    let a = sample_db();
    a.save(&path).unwrap();
    let a_count = a.execute("SELECT COUNT(*) FROM pois").unwrap();

    // State B's save "crashes" at assorted offsets: the torn bytes only
    // ever reach the temp sibling, exactly as SpatialDb::save stages
    // them, so the real file must still open as state A.
    let b = Arc::new(SpatialDb::new(EngineProfile::ExactGrid));
    b.execute("CREATE TABLE pois (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
    b.execute("INSERT INTO pois VALUES (1, 'only', NULL)").unwrap();
    let b_bytes = b.snapshot_bytes().unwrap();
    let tmp = dir.join("db.jkpn.tmp");
    for offset in [0u64, 1, 9, 25, 26, b_bytes.len() as u64 / 2, b_bytes.len() as u64 - 1] {
        let mut fp = FailpointFile::new(
            std::fs::File::create(&tmp).unwrap(),
            Failpoint::Truncate { offset },
        );
        assert!(fp.write_all(&b_bytes).is_err(), "failpoint must fire");
        let restored = SpatialDb::open(&path).expect("previous file intact");
        let count = restored.execute("SELECT COUNT(*) FROM pois").unwrap();
        assert_eq!(count, a_count, "crash at {offset} corrupted the visible file");
    }

    // A completed save replaces the file: now state B is visible.
    b.save(&path).unwrap();
    let restored = SpatialDb::open(&path).unwrap();
    assert_eq!(restored.profile(), EngineProfile::ExactGrid);
    let count = restored.execute("SELECT COUNT(*) FROM pois").unwrap();
    assert_eq!(count.scalar().unwrap().to_string(), "1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_inserts_never_produce_an_unloadable_snapshot() {
    let dir = scratch_dir("racing-save");
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE t (id BIGINT, name TEXT)").unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        let writer_db = db.clone();
        let writer_stop = stop.clone();
        s.spawn(move || {
            // Bounded: an unthrottled writer would grow the table faster
            // than each round can serialize it.
            for i in 0..20_000i64 {
                if writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                writer_db
                    .insert_row("t", vec![Value::Int(i), Value::Text(format!("r{i}"))])
                    .unwrap();
            }
        });

        let path = dir.join("race.jkpn");
        for round in 0..common::cases(10) {
            db.save(&path).expect("save under concurrent inserts");
            let restored = SpatialDb::open(&path)
                .unwrap_or_else(|e| panic!("round {round}: saved file unloadable: {e}"));
            // The restored count must equal the rows the file actually
            // holds — open() verifies count-vs-payload, so loading at
            // all proves no mismatch was written.
            let r = restored.execute("SELECT COUNT(*) FROM t").unwrap();
            assert!(r.scalar().is_some());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// WAL faults
// ---------------------------------------------------------------------------

#[test]
fn wal_replay_recovers_writes_since_the_snapshot() {
    let dir = scratch_dir("wal-recover");
    {
        let db =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        db.execute("CREATE TABLE pts (id BIGINT, name TEXT, geom GEOMETRY)").unwrap();
        for i in 0..25 {
            db.execute(&format!(
                "INSERT INTO pts VALUES ({i}, 'n{i}', ST_GeomFromText('POINT ({i} 0)'))"
            ))
            .unwrap();
        }
        db.create_spatial_index("pts", "geom").unwrap();
        db.create_ordered_index("pts", "name").unwrap();
        // No checkpoint, no explicit save: the WAL is the only record.
    }
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let r = db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "25");
    // Index definitions came back through the log too.
    let r = db
        .execute(
            "SELECT COUNT(*) FROM pts WHERE ST_DWithin(geom, \
             ST_GeomFromText('POINT (10 0)'), 1.5)",
        )
        .unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "3");
    let r = db.execute("SELECT id FROM pts WHERE name = 'n7'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "7");
    std::fs::remove_dir_all(&dir).ok();
}

/// Hand-built WAL image plus the end offset of every frame, so the
/// sweeps can compute exactly which records survive a cut at offset `k`.
fn wal_image(inserts: usize) -> (Vec<u8>, Vec<(usize, bool)>) {
    let mut records: Vec<WalRecord> = vec![WalRecord::CreateTable {
        name: "pts".into(),
        columns: vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("name", DataType::Text)],
    }];
    for i in 0..inserts {
        records.push(WalRecord::Insert {
            table: "pts".into(),
            row: vec![Value::Int(i as i64), Value::Text(format!("n{i}"))],
        });
    }
    records.push(WalRecord::CreateOrderedIndex { table: "pts".into(), column: "name".into() });

    // Generation 0: the generation of the (absent) snapshot this log
    // sits next to, so recovery accepts its records.
    let mut bytes = wal_header(0);
    // (frame end offset, is-an-insert) per record.
    let mut frames = Vec::new();
    for rec in &records {
        bytes.extend_from_slice(&rec.frame());
        frames.push((bytes.len(), matches!(rec, WalRecord::Insert { .. })));
    }
    (bytes, frames)
}

/// Rows expected after recovery from a log whose bytes are intact only
/// up to (exclusive) `valid_up_to`.
fn expected_rows(frames: &[(usize, bool)], valid_up_to: usize) -> (bool, usize) {
    let mut has_table = false;
    let mut rows = 0;
    for (i, (end, is_insert)) in frames.iter().enumerate() {
        if *end > valid_up_to {
            break;
        }
        if i == 0 {
            has_table = true;
        }
        if *is_insert {
            rows += 1;
        }
    }
    (has_table, rows)
}

#[test]
fn wal_append_killed_at_any_offset_recovers_a_consistent_prefix() {
    let dir = scratch_dir("wal-torn");
    let (bytes, frames) = wal_image(common::cases(6));
    for cut in (0..bytes.len()).step_by(sweep_step()) {
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), &bytes[..cut]).unwrap();

        let db =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        let (has_table, rows) = expected_rows(&frames, cut);
        if has_table {
            let r = db.execute("SELECT COUNT(*) FROM pts").unwrap();
            assert_eq!(
                r.scalar().unwrap().to_string(),
                rows.to_string(),
                "cut at {cut}: wrong prefix recovered"
            );
        } else {
            assert!(db.table_names().is_empty(), "cut at {cut}: phantom table");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_bit_flip_at_any_offset_recovers_a_consistent_prefix_or_fails_loudly() {
    let dir = scratch_dir("wal-flip");
    let (bytes, frames) = wal_image(common::cases(6));
    for offset in (0..bytes.len()).step_by(sweep_step()) {
        let bit = (offset % 8) as u8;
        let flipped = apply_failpoint(&bytes, Failpoint::BitFlip { offset: offset as u64, bit });
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), &flipped).unwrap();

        let result =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default());
        if offset < 8 {
            // A corrupted log head is detected, not replayed.
            assert!(result.is_err(), "flip in WAL header at {offset} went undetected");
            continue;
        }
        let db = result.unwrap_or_else(|e| panic!("flip at {offset}: recovery failed: {e}"));
        // The flip lands inside exactly one frame; everything before it
        // must survive, nothing at or after it may.
        let (has_table, rows) = expected_rows(&frames, offset);
        if has_table {
            let r = db.execute("SELECT COUNT(*) FROM pts").unwrap();
            assert_eq!(
                r.scalar().unwrap().to_string(),
                rows.to_string(),
                "flip at {offset}: wrong prefix recovered"
            );
        } else {
            assert!(db.table_names().is_empty(), "flip at {offset}: phantom table");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Durable lifecycle
// ---------------------------------------------------------------------------

#[test]
fn dml_is_durable_via_checkpoint() {
    let dir = scratch_dir("dml-checkpoint");
    {
        let db =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        db.execute("CREATE TABLE t (id BIGINT, name TEXT)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')")).unwrap();
        }
        db.execute("DELETE FROM t WHERE id >= 7").unwrap();
        db.execute("UPDATE t SET name = 'renamed' WHERE id = 0").unwrap();
    }
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "7");
    let r = db.execute("SELECT name FROM t WHERE id = 0").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "renamed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_wal_surviving_a_checkpoint_crash_is_not_replayed() {
    // The checkpoint crash window: the new snapshot has been renamed
    // into place but the crash hits before the WAL is truncated, so a
    // stale log (whose records the snapshot already contains) survives
    // next to it. Recovery must open the snapshot and DISCARD the log —
    // replaying it would hit CREATE TABLE conflicts or silently
    // duplicate rows.
    let dir = scratch_dir("stale-wal");
    {
        let db =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        db.execute("CREATE TABLE t (id BIGINT, name TEXT)").unwrap();
        for i in 0..8 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')")).unwrap();
        }
        // Save the WAL as it stands (create + 8 inserts), checkpoint,
        // then put the stale copy back: byte-for-byte the post-crash
        // directory state.
        let stale = std::fs::read(dir.join(WAL_FILE)).unwrap();
        db.checkpoint().unwrap();
        std::fs::write(dir.join(WAL_FILE), &stale).unwrap();
    }
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap_or_else(|e| panic!("stale WAL broke recovery: {e}"));
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "8", "stale WAL records were replayed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_dml_rolls_back_atomically() {
    // DML statements are atomic: an UPDATE that errors — here a type
    // error the schema check catches — leaves memory, the WAL and the
    // recovered state exactly as they were before the statement.
    let dir = scratch_dir("failed-dml");
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    db.execute("CREATE TABLE t (id BIGINT, name TEXT)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')")).unwrap();
    }
    let logged = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    assert!(db.execute("UPDATE t SET id = 'not a number'").is_err());
    // Nothing was applied, so nothing was logged.
    let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    assert_eq!(after, logged, "failed UPDATE must not leave WAL records behind");
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "5");
    drop(db);
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "5");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_append_failure_leaves_no_phantom_rows() {
    // Regression: the insert path used to apply to heap + indexes before
    // appending to the WAL, so an append failure left a phantom row that
    // was visible in memory but lost on restart. The write transaction
    // now stages WAL frames before publishing and rolls the statement
    // back when the log write fails.
    let dir = scratch_dir("wal-append-fails");
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    db.execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").unwrap();
    db.execute("INSERT INTO t VALUES (1, ST_GeomFromText('POINT (1 1)'))").unwrap();
    db.create_spatial_index("t", "geom").unwrap();

    db.fail_wal_appends(true);
    assert!(
        db.execute("INSERT INTO t VALUES (2, ST_GeomFromText('POINT (2 2)'))").is_err(),
        "append failure must surface"
    );
    assert!(db.execute("DELETE FROM t WHERE id = 1").is_err());
    assert!(db.execute("UPDATE t SET id = 3 WHERE id = 1").is_err());
    db.fail_wal_appends(false);

    // In-memory state never showed any of the failed statements, through
    // the scan path or the index path.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "1", "phantom row visible after failed append");
    let r = db
        .execute("SELECT COUNT(*) FROM t WHERE ST_Within(geom, ST_MakeEnvelope(0, 0, 9, 9))")
        .unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "1", "index retains entries of rolled-back DML");

    // And recovery agrees.
    drop(db);
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let r = db.execute("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delete_and_update_replay_from_wal() {
    // DeleteId records replay across a reopen that recovers from the
    // WAL (no clean shutdown checkpoint): the victim is addressed by
    // row id, which v4 snapshots keep stable across restarts.
    let dir = scratch_dir("delete-replay");
    {
        let db =
            SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        db.execute("CREATE TABLE t (id BIGINT, name TEXT)").unwrap();
        for i in 0..6 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'x{i}')")).unwrap();
        }
        db.execute("DELETE FROM t WHERE id >= 4").unwrap();
        db.execute("UPDATE t SET name = 'updated' WHERE id = 0").unwrap();
        // No drop-time checkpoint path: leak the handle so recovery must
        // come from the log alone? The engine checkpoints on detach, so
        // instead copy the durable dir mid-flight.
        let copy = scratch_dir("delete-replay-copy");
        for f in [SNAPSHOT_FILE, WAL_FILE] {
            std::fs::copy(dir.join(f), copy.join(f)).unwrap();
        }
        let db2 =
            SpatialDb::open_durable(&copy, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        let r = db2.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap().to_string(), "4", "replayed deletes");
        let r = db2.execute("SELECT name FROM t WHERE id = 0").unwrap();
        assert_eq!(r.rows[0][0], Value::Text("updated".into()), "replayed update pair");
        std::fs::remove_dir_all(&copy).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_rows_replay_deletes_by_row_id_not_bytes() {
    // Regression for the v3 WAL bug: Delete records carried the row's
    // canonical bytes and replay removed the *first* byte-matching live
    // row, so with duplicate rows a crash could resurrect the deleted
    // copy and kill a survivor. v4 logs DeleteId/InsertAt by row id.
    // Three byte-identical rows at slots 0..2, delete the middle one:
    // recovery must keep exactly slots 0 and 2.
    use jackpine::storage::RowId;
    let dup = vec![Value::Int(7), Value::Text("dup".into())];
    let records = vec![
        WalRecord::CreateTable {
            name: "t".into(),
            columns: vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ],
        },
        WalRecord::InsertAt { table: "t".into(), id: RowId { page: 0, slot: 0 }, row: dup.clone() },
        WalRecord::InsertAt { table: "t".into(), id: RowId { page: 0, slot: 1 }, row: dup.clone() },
        WalRecord::InsertAt { table: "t".into(), id: RowId { page: 0, slot: 2 }, row: dup.clone() },
        WalRecord::DeleteId { table: "t".into(), id: RowId { page: 0, slot: 1 } },
    ];
    let mut bytes = wal_header(0);
    for rec in &records {
        bytes.extend_from_slice(&rec.frame());
    }
    let dir = scratch_dir("dup-delete");
    std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "2", "exactly one duplicate was deleted");
    let mut survivors = db.table_row_ids("t").unwrap();
    survivors.sort_unstable_by_key(|id| (id.page, id.slot));
    assert_eq!(
        survivors,
        vec![RowId { page: 0, slot: 0 }, RowId { page: 0, slot: 2 }],
        "replay must delete the logged row id, not the first byte match"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_or_flipped_wal_recovery_is_identical_through_a_tiny_pool() {
    // The write path that produced this history ran against a two-frame
    // buffer pool, so pages evicted (dirty-writeback and fault back in)
    // mid-transaction. For a WAL cut at any offset — and for a bit flip
    // at any offset — recovery into an unbounded engine and into a
    // paged engine must answer identically: same rows, or the same
    // loud corruption error.
    let src = scratch_dir("pool-sweep-src");
    let (snapshot, wal) = {
        let db =
            SpatialDb::open_durable(&src, EngineProfile::ExactRtree, DurabilityOptions::default())
                .unwrap();
        db.set_pool_bytes(2 * 8192);
        db.execute("CREATE TABLE t (id BIGINT, pad TEXT)").unwrap();
        let pad = "x".repeat(400);
        for i in 0..60 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, '{pad}')")).unwrap();
        }
        db.execute("DELETE FROM t WHERE id >= 48").unwrap();
        db.execute("UPDATE t SET pad = 'small' WHERE id < 9").unwrap();
        assert!(db.pool_stats().evictions > 0, "two frames must evict across 60 padded rows");
        // Copy the durable pair while the engine is live — detaching
        // checkpoints, and the sweep needs the raw log.
        (std::fs::read(src.join(SNAPSHOT_FILE)).unwrap(), std::fs::read(src.join(WAL_FILE)).unwrap())
    };
    std::fs::remove_dir_all(&src).ok();

    // Outer None: recovery refused the image (detected corruption).
    // Inner None: recovered, but to a catalog without the table (an
    // image ending before the CreateTable frame).
    let open_image = |tag: &str, image: &[u8], pool_bytes: usize| {
        let dir = scratch_dir(&format!("pool-sweep-{tag}"));
        std::fs::write(dir.join(SNAPSHOT_FILE), &snapshot).unwrap();
        std::fs::write(dir.join(WAL_FILE), image).unwrap();
        let rows = match SpatialDb::open_durable(
            &dir,
            EngineProfile::ExactRtree,
            DurabilityOptions::default(),
        ) {
            Err(_) => None,
            Ok(db) => {
                db.set_pool_bytes(pool_bytes);
                db.clear_caches();
                let rows = if db.table_names().is_empty() {
                    None
                } else {
                    Some(db.execute("SELECT id, pad FROM t ORDER BY id").unwrap())
                };
                drop(db);
                Some(rows)
            }
        };
        std::fs::remove_dir_all(&dir).ok();
        rows
    };
    // A coarser stride than the byte sweeps: each image pays two full
    // recoveries. ~50 points still cross every record kind.
    let step = (wal.len() / 50).max(sweep_step());
    for cut in (0..=wal.len()).step_by(step) {
        let unbounded = open_image("unbounded", &wal[..cut], 0);
        assert!(unbounded.is_some(), "cut at {cut}: a clean prefix must recover");
        let paged = open_image("paged", &wal[..cut], 2 * 8192);
        assert_eq!(unbounded, paged, "cut at {cut}: paged recovery diverged from unbounded");
    }
    for offset in (0..wal.len()).step_by(step) {
        let bit = (offset % 8) as u8;
        let flipped = apply_failpoint(&wal, Failpoint::BitFlip { offset: offset as u64, bit });
        let unbounded = open_image("unbounded", &flipped, 0);
        let paged = open_image("paged", &flipped, 2 * 8192);
        assert_eq!(
            unbounded, paged,
            "flip at {offset}.{bit}: paged recovery diverged from unbounded"
        );
    }
}

#[test]
fn deferred_vacuum_drains_on_checkpoint_and_close() {
    // Logically-deleted rows queue for physical reclaim; besides the
    // next DML statement, a checkpoint and connection close are both
    // drain points (asserted through the pending_reclaim gauge's
    // backing count).
    let dir = scratch_dir("vacuum-triggers");
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    db.execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, ST_GeomFromText('POINT ({i} 0)'))"))
            .unwrap();
    }
    db.create_spatial_index("t", "geom").unwrap();

    db.execute("DELETE FROM t WHERE id < 5").unwrap();
    assert!(db.pending_reclaim_len() > 0, "deletes must defer physical reclaim");
    db.checkpoint().unwrap();
    assert_eq!(db.pending_reclaim_len(), 0, "checkpoint must vacuum");

    db.execute("DELETE FROM t WHERE id >= 15").unwrap();
    assert!(db.pending_reclaim_len() > 0, "deletes must defer physical reclaim");
    db.close().unwrap();
    assert_eq!(db.pending_reclaim_len(), 0, "close must vacuum");
    // The survivors are intact after both drains, via index and scan.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "10");
    let r = db
        .execute("SELECT COUNT(*) FROM t WHERE ST_Within(geom, ST_MakeEnvelope(4.5, -1, 9.5, 1))")
        .unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "5");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_saves_to_one_path_never_destroy_the_file() {
    // Each save stages a uniquely named temp file, so two racing saves
    // can interleave freely: the destination only ever receives one
    // complete image or the other.
    let dir = scratch_dir("racing-two-savers");
    let path = dir.join("shared.jkpn");
    let a = sample_db();
    let b = sample_db();
    std::thread::scope(|s| {
        let path = &path;
        for db in [&a, &b] {
            s.spawn(move || {
                for _ in 0..common::cases(12) {
                    db.save(path).expect("save");
                }
            });
        }
    });
    SpatialDb::open(&path).expect("racing saves corrupted the snapshot");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn set_durability_attaches_and_detaches() {
    let dir = scratch_dir("attach");
    let db = sample_db();
    assert!(db.durability_dir().is_none());
    db.set_durability(Some(&dir), DurabilityOptions::default()).unwrap();
    assert_eq!(db.durability_dir().as_deref(), Some(dir.as_path()));
    assert!(dir.join(SNAPSHOT_FILE).exists());
    assert!(dir.join(WAL_FILE).exists());
    db.execute("INSERT INTO tags VALUES ('c', '3')").unwrap();
    db.set_durability(None, DurabilityOptions::default()).unwrap();
    assert!(db.durability_dir().is_none());

    // The attached period is recoverable: snapshot + the logged insert.
    let restored =
        SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
            .unwrap();
    let r = restored.execute("SELECT COUNT(*) FROM tags").unwrap();
    assert_eq!(r.scalar().unwrap().to_string(), "3");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistence_and_index_errors_are_distinct_variants() {
    let err = SpatialDb::open_bytes(b"definitely not a database").err().expect("must fail");
    assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    let db = sample_db();
    let err = db.create_spatial_index("pois", "name").expect_err("must fail");
    assert!(matches!(err, EngineError::Index(_)), "got {err:?}");
}
