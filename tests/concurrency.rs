//! Concurrency integration tests: the engine must stay consistent under
//! parallel readers and under readers racing writers.

use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::obs::DETERMINISTIC_COUNTERS;
use jackpine::storage::Value;
use std::sync::Arc;
use std::thread;

/// Deterministic xorshift64* — seeded sweeps must replay identically.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn seeded_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({} {})'))",
            i % 20,
            i / 20
        ))
        .unwrap();
    }
    db.create_spatial_index("pts", "geom").unwrap();
    db
}

#[test]
fn parallel_readers_get_identical_answers() {
    let db = seeded_db();
    let sql = "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, ST_MakeEnvelope(-1, -1, 9.5, 4.5))";
    let expected = db.execute(sql).unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let sql = sql.to_string();
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let r = db.execute(&sql).expect("read");
                assert_eq!(r.rows, vec![vec![Value::Int(50)]]);
            }
        }));
    }
    for h in handles {
        h.join().expect("reader thread");
    }
    assert_eq!(expected.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn readers_race_writers_without_corruption() {
    let db = seeded_db();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            for i in 200..400 {
                db.execute(&format!(
                    "INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT (100 {i})'))"
                ))
                .expect("insert");
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        readers.push(thread::spawn(move || {
            for _ in 0..100 {
                // The original region is untouched by the writer: every
                // read must see exactly the original 200 points there.
                let r = db
                    .execute(
                        "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, \
                         ST_MakeEnvelope(-1, -1, 50, 50))",
                    )
                    .expect("read");
                assert_eq!(r.rows[0][0], Value::Int(200));
            }
        }));
    }
    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
    let r = db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(400));
}

/// A seeded multi-session sweep: writers racing readers across every
/// DML shape plus index DDL, with three invariants a snapshot reader
/// must never see broken:
///
/// 1. A stable region (ids 0..100) that no writer touches spatially —
///    every windowed count over it returns exactly 100.
/// 2. A flag column flipped for the whole stable region in one UPDATE —
///    readers see all-zeros or all-ones, never a mix (statement
///    atomicity).
/// 3. Batch churn (each writer INSERTs 5 rows in one statement, then
///    DELETEs the batch in one statement) — the churn-region count is
///    always a multiple of 5.
#[test]
fn seeded_multi_session_sweep_holds_snapshot_invariants() {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE sweep (id BIGINT, flag BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..100 {
        db.execute(&format!(
            "INSERT INTO sweep VALUES ({i}, 0, ST_GeomFromText('POINT ({} {})'))",
            i % 10,
            i / 10
        ))
        .unwrap();
    }
    db.create_spatial_index("sweep", "geom").unwrap();

    const SEED: u64 = 0x5eed_cafe;
    const WRITERS: u64 = 3;
    const READERS: usize = 3;
    const ROUNDS: usize = 40;

    thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                let mut rng = Rng::new(SEED ^ (w + 1));
                // Each writer owns a disjoint id range for batch churn.
                let base = 1000 * (w + 1);
                for round in 0..ROUNDS {
                    match rng.below(3) {
                        0 => {
                            // Atomic whole-region flag flip.
                            db.execute("UPDATE sweep SET flag = 1 - flag WHERE id < 100")
                                .expect("flip");
                        }
                        1 => {
                            // One INSERT statement, 5 rows, far region.
                            let tag = base + round as u64;
                            let vals: Vec<String> = (0..5)
                                .map(|j| {
                                    format!(
                                        "({tag}, -1, ST_GeomFromText('POINT ({} 0)'))",
                                        5000 + j
                                    )
                                })
                                .collect();
                            db.execute(&format!("INSERT INTO sweep VALUES {}", vals.join(", ")))
                                .expect("batch insert");
                            db.execute(&format!("DELETE FROM sweep WHERE id = {tag}"))
                                .expect("batch delete");
                        }
                        _ => {
                            // Count-preserving geometry rewrite inside
                            // the stable window (translate by zero).
                            db.execute(
                                "UPDATE sweep SET geom = ST_Translate(geom, 0, 0) \
                                 WHERE id < 100",
                            )
                            .expect("rewrite");
                        }
                    }
                }
            });
        }
        // One DDL session churns an ordered index while DML runs; a
        // concurrent drop may race a concurrent create, so only the
        // engine's own invariants (not success) are asserted.
        {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..20 {
                    if i % 2 == 0 {
                        let _ = db.create_ordered_index("sweep", "id");
                    } else {
                        let _ = db.drop_ordered_index("sweep", "id");
                    }
                }
            });
        }
        for r in 0..READERS {
            let db = db.clone();
            s.spawn(move || {
                let mut rng = Rng::new(SEED ^ (0x1000 + r as u64));
                for _ in 0..ROUNDS * 2 {
                    match rng.below(3) {
                        0 => {
                            let c = db
                                .execute(
                                    "SELECT COUNT(*) FROM sweep WHERE ST_Within(geom, \
                                     ST_MakeEnvelope(-1, -1, 10.5, 10.5))",
                                )
                                .expect("window read");
                            assert_eq!(
                                c.rows[0][0],
                                Value::Int(100),
                                "stable region count drifted mid-statement"
                            );
                        }
                        1 => {
                            let c = db
                                .execute("SELECT COUNT(*) FROM sweep WHERE id < 100 AND flag = 0")
                                .expect("flag read");
                            let n = match c.rows[0][0] {
                                Value::Int(n) => n,
                                ref other => panic!("count returned {other:?}"),
                            };
                            assert!(
                                n == 0 || n == 100,
                                "observed a half-applied UPDATE: {n} rows with flag = 0"
                            );
                        }
                        _ => {
                            let c = db
                                .execute("SELECT COUNT(*) FROM sweep WHERE id >= 1000")
                                .expect("churn read");
                            let n = match c.rows[0][0] {
                                Value::Int(n) => n,
                                ref other => panic!("count returned {other:?}"),
                            };
                            assert_eq!(
                                n % 5,
                                0,
                                "observed a half-applied batch INSERT/DELETE: {n} churn rows"
                            );
                        }
                    }
                }
            });
        }
    });

    // Quiesced end state: churn drained, stable region intact.
    let c = db.execute("SELECT COUNT(*) FROM sweep WHERE id >= 1000").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(0));
    let c = db.execute("SELECT COUNT(*) FROM sweep").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(100));
}

/// After a racing sweep, the deterministic counter set must still be
/// worker-invariant: the same query, cold caches, produces identical
/// deterministic deltas at 1 worker and at 4.
#[test]
fn deterministic_counters_stay_worker_invariant_after_dml() {
    let db = seeded_db();
    // Mix the visibility metadata: leave live tombstone traffic behind.
    db.execute("UPDATE pts SET geom = ST_Translate(geom, 0, 0) WHERE id < 50").unwrap();
    db.execute("DELETE FROM pts WHERE id >= 190").unwrap();

    let sql = "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, ST_MakeEnvelope(-1, -1, 9.5, 4.5))";
    let mut deltas = Vec::new();
    for workers in [1usize, 4] {
        db.set_workers(workers);
        db.clear_caches();
        let (result, trace) = db.execute_traced(sql).expect("traced read");
        deltas.push((workers, result, trace));
    }
    let (_, r1, t1) = &deltas[0];
    let (_, r4, t4) = &deltas[1];
    assert_eq!(r1, r4, "answers must not depend on worker count");
    for name in DETERMINISTIC_COUNTERS {
        assert_eq!(
            t1.counter(name),
            t4.counter(name),
            "deterministic counter '{name}' varies with worker count"
        );
    }
}

#[test]
fn cache_eviction_races_reads_safely() {
    let db = seeded_db();
    let evictor = {
        let db = db.clone();
        thread::spawn(move || {
            for _ in 0..200 {
                db.clear_caches();
            }
        })
    };
    let reader = {
        let db = db.clone();
        thread::spawn(move || {
            for _ in 0..100 {
                let r = db.execute("SELECT COUNT(*) FROM pts").expect("read");
                assert_eq!(r.rows[0][0], Value::Int(200));
            }
        })
    };
    evictor.join().expect("evictor");
    reader.join().expect("reader");
}
