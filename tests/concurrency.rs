//! Concurrency integration tests: the engine must stay consistent under
//! parallel readers and under readers racing writers.

use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::storage::Value;
use std::sync::Arc;
use std::thread;

fn seeded_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({} {})'))",
            i % 20,
            i / 20
        ))
        .unwrap();
    }
    db.create_spatial_index("pts", "geom").unwrap();
    db
}

#[test]
fn parallel_readers_get_identical_answers() {
    let db = seeded_db();
    let sql = "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, ST_MakeEnvelope(-1, -1, 9.5, 4.5))";
    let expected = db.execute(sql).unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let sql = sql.to_string();
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let r = db.execute(&sql).expect("read");
                assert_eq!(r.rows, vec![vec![Value::Int(50)]]);
            }
        }));
    }
    for h in handles {
        h.join().expect("reader thread");
    }
    assert_eq!(expected.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn readers_race_writers_without_corruption() {
    let db = seeded_db();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            for i in 200..400 {
                db.execute(&format!(
                    "INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT (100 {i})'))"
                ))
                .expect("insert");
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        readers.push(thread::spawn(move || {
            for _ in 0..100 {
                // The original region is untouched by the writer: every
                // read must see exactly the original 200 points there.
                let r = db
                    .execute(
                        "SELECT COUNT(*) FROM pts WHERE ST_Within(geom, \
                         ST_MakeEnvelope(-1, -1, 50, 50))",
                    )
                    .expect("read");
                assert_eq!(r.rows[0][0], Value::Int(200));
            }
        }));
    }
    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
    let r = db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(400));
}

#[test]
fn cache_eviction_races_reads_safely() {
    let db = seeded_db();
    let evictor = {
        let db = db.clone();
        thread::spawn(move || {
            for _ in 0..200 {
                db.clear_caches();
            }
        })
    };
    let reader = {
        let db = db.clone();
        thread::spawn(move || {
            for _ in 0..100 {
                let r = db.execute("SELECT COUNT(*) FROM pts").expect("read");
                assert_eq!(r.rows[0][0], Value::Int(200));
            }
        })
    };
    evictor.join().expect("evictor");
    reader.join().expect("reader");
}
