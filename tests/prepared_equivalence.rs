//! Prepared-vs-naive equivalence corpus: the prepared-geometry fast
//! path must be *bit-identical* to the naive DE-9IM machinery — same
//! intersection matrices from `relate_prepared` as from `relate`, and
//! the same truth value from `evaluate` as from the naive predicate
//! behind the SQL layer's envelope prefilter.
//!
//! The corpus is seeded and grid-snapped: integer coordinates make
//! shared edges, coincident vertices, corner contacts and exact
//! equality common rather than measure-zero, which is where refine
//! fast paths historically go wrong. Hand-picked boundary-touching and
//! hole cases are pinned on top of the random sweep.

use jackpine::geom::{wkt, Geometry};
use jackpine::topo::{
    contains, covered_by, covers, crosses, disjoint, equals, evaluate, intersects, overlaps,
    relate, relate_prepared, touches, within, PredicateKind, PreparedGeometry,
};

/// Deterministic 64-bit LCG (same constants as the in-tree PRNG); no
/// external rand crate in this workspace.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

fn parse(text: &str) -> Geometry {
    wkt::parse(text).unwrap_or_else(|e| panic!("corpus WKT {text:?}: {e}"))
}

/// Axis-aligned rectangle with integer corners on a small grid:
/// touching, overlap and equality between two of these are common.
fn rect(rng: &mut Lcg) -> Geometry {
    let (x, y) = (rng.below(8), rng.below(8));
    let (w, h) = (1 + rng.below(4), 1 + rng.below(4));
    parse(&format!(
        "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))",
        x + w,
        x + w,
        y + h,
        y + h
    ))
}

/// Rectangle with a rectangular hole strictly inside it. Large enough
/// that other corpus members can fall inside the hole (exterior), on
/// the hole's ring (boundary) or in the annulus (interior).
fn donut(rng: &mut Lcg) -> Geometry {
    let (x, y) = (rng.below(5), rng.below(5));
    let (w, h) = (4 + rng.below(4), 4 + rng.below(4));
    let (hx, hy) = (x + 1, y + 1);
    let (hw, hh) = (1 + rng.below(w as u64 - 2), 1 + rng.below(h as u64 - 2));
    parse(&format!(
        "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}), \
         ({hx} {hy}, {} {hy}, {} {}, {hx} {}, {hx} {hy}))",
        x + w,
        x + w,
        y + h,
        y + h,
        hx + hw,
        hx + hw,
        hy + hh,
        hy + hh
    ))
}

/// Non-rectilinear but always-valid triangle (slanted edges exercise
/// the chain intersection kernels off the grid axes).
fn triangle(rng: &mut Lcg) -> Geometry {
    let (x, y) = (rng.below(8), rng.below(8));
    let (a, b) = (2 + rng.below(3), 2 + rng.below(3));
    parse(&format!("POLYGON (({x} {y}, {} {y}, {} {}, {x} {y}))", x + a, x + rng.below(3), y + b))
}

/// Grid random walk, 2–5 segments; revisiting grid points makes
/// self-touching and collinear-overlap pairs likely.
fn walk(rng: &mut Lcg) -> Geometry {
    let (mut x, mut y) = (rng.below(8), rng.below(8));
    let mut pts = vec![format!("{x} {y}")];
    for _ in 0..2 + rng.below(4) {
        match rng.below(4) {
            0 => x += 1 + rng.below(2),
            1 => x -= 1 + rng.below(2),
            2 => y += 1 + rng.below(2),
            _ => y -= 1 + rng.below(2),
        }
        pts.push(format!("{x} {y}"));
    }
    parse(&format!("LINESTRING ({})", pts.join(", ")))
}

fn point(rng: &mut Lcg) -> Geometry {
    parse(&format!("POINT ({} {})", rng.below(10), rng.below(10)))
}

/// Hand-picked boundary-touching, hole and degenerate-contact cases:
/// the configurations where a short-circuit that is merely *plausible*
/// (rather than sound) would diverge from the naive answer.
fn pinned_corpus() -> Vec<Geometry> {
    [
        // Two unit squares sharing a full edge, and a corner-only pair.
        "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
        "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))",
        "POLYGON ((4 2, 6 2, 6 4, 4 4, 4 2))",
        // Identical square (Equals must hold) and its expansion.
        "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
        "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
        // Donut whose hole exactly matches a corpus square: the square
        // touches the donut only along the hole ring — the case that
        // refutes "envelope overlap + vertex probe ⇒ interior overlap".
        "POLYGON ((-1 -1, 3 -1, 3 3, -1 3, -1 -1), (0 0, 2 0, 2 2, 0 2, 0 0))",
        // Square strictly inside that hole (disjoint despite nested
        // envelopes).
        "POLYGON ((0.5 0.5, 1.5 0.5, 1.5 1.5, 0.5 1.5, 0.5 0.5))",
        // Line along a square's edge, line through its interior, line
        // ending exactly on its boundary.
        "LINESTRING (0 0, 2 0)",
        "LINESTRING (-1 1, 3 1)",
        "LINESTRING (2 2, 5 5)",
        // Point on a boundary vertex, on an edge, in an interior.
        "POINT (0 0)",
        "POINT (1 0)",
        "POINT (1 1)",
        "MULTIPOINT ((0 0), (2 2), (9 9))",
    ]
    .iter()
    .map(|w| parse(w))
    .collect()
}

fn corpus(seed: u64) -> Vec<Geometry> {
    let mut rng = Lcg(seed);
    let mut all = pinned_corpus();
    for _ in 0..6 {
        all.push(rect(&mut rng));
        all.push(triangle(&mut rng));
        all.push(walk(&mut rng));
        all.push(point(&mut rng));
    }
    for _ in 0..3 {
        all.push(donut(&mut rng));
    }
    all
}

/// What the SQL layer computes without the fast path: the envelope
/// prefilter (`envs_intersect && pred`, disjoint negated) around the
/// naive predicate.
fn naive_reference(kind: PredicateKind, a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return kind == PredicateKind::Disjoint;
    }
    let f = match kind {
        PredicateKind::Equals => equals,
        PredicateKind::Disjoint => disjoint,
        PredicateKind::Intersects => intersects,
        PredicateKind::Touches => touches,
        PredicateKind::Crosses => crosses,
        PredicateKind::Within => within,
        PredicateKind::Contains => contains,
        PredicateKind::Overlaps => overlaps,
        PredicateKind::Covers => covers,
        PredicateKind::CoveredBy => covered_by,
    };
    f(a, b).expect("naive predicate on corpus geometry")
}

const ALL_KINDS: [PredicateKind; 10] = [
    PredicateKind::Equals,
    PredicateKind::Disjoint,
    PredicateKind::Intersects,
    PredicateKind::Touches,
    PredicateKind::Crosses,
    PredicateKind::Within,
    PredicateKind::Contains,
    PredicateKind::Overlaps,
    PredicateKind::Covers,
    PredicateKind::CoveredBy,
];

/// Every ordered pair of the corpus: the prepared relate must produce
/// the bit-identical DE-9IM matrix, and every named predicate evaluated
/// over prepared operands must agree with the prefiltered naive answer.
#[test]
fn prepared_matches_naive_over_seeded_corpus() {
    let geoms = corpus(0x9e3779b97f4a7c15);
    let prepared: Vec<PreparedGeometry> = geoms.iter().map(PreparedGeometry::new).collect();
    let mut relates = 0usize;
    let mut short_circuits = 0usize;

    for (i, (ga, pa)) in geoms.iter().zip(&prepared).enumerate() {
        for (j, (gb, pb)) in geoms.iter().zip(&prepared).enumerate() {
            let naive = relate(ga, gb).expect("naive relate on corpus geometry");
            let fast = relate_prepared(pa, pb).expect("prepared relate on corpus geometry");
            assert_eq!(
                naive, fast,
                "pair ({i}, {j}): relate {naive} != relate_prepared {fast}\n a = {ga:?}\n b = {gb:?}"
            );
            relates += 1;

            for kind in ALL_KINDS {
                let outcome = evaluate(kind, pa, pb)
                    .unwrap_or_else(|e| panic!("pair ({i}, {j}) {kind:?}: {e}"));
                let expected = naive_reference(kind, ga, gb);
                assert_eq!(
                    outcome.value, expected,
                    "pair ({i}, {j}) {kind:?}: prepared {} != naive {expected}\n a = {ga:?}\n b = {gb:?}",
                    outcome.value
                );
                short_circuits += usize::from(outcome.short_circuit);
            }
        }
    }

    // The corpus must actually exercise both regimes: plenty of pairs,
    // and a healthy share decided by short-circuits (else the fast path
    // under test never fired).
    assert!(relates >= 1000, "corpus too small: {relates} pairs");
    assert!(short_circuits > relates, "short-circuits barely fired: {short_circuits}");
}

/// Preparation itself must be order-independent and reusable: preparing
/// once and relating against many partners gives the same matrices as
/// fresh preparations each time.
#[test]
fn reused_preparation_is_stable() {
    let geoms = corpus(0xdecafbad);
    let donut = PreparedGeometry::new(&geoms[5]);
    for g in &geoms {
        let fresh = relate_prepared(&PreparedGeometry::new(&geoms[5]), &PreparedGeometry::new(g))
            .expect("fresh relate");
        let reused = relate_prepared(&donut, &PreparedGeometry::new(g)).expect("reused relate");
        assert_eq!(fresh, reused, "reused preparation diverged against {g:?}");
    }
}
