//! Out-of-core equivalence: paging must be invisible to query
//! semantics. The same corpus answered through a bounded buffer pool
//! (heap pages faulting in and out of pinned frames, R-tree leaves
//! demand-loaded) must be **bit-identical** to the unbounded in-memory
//! run — same rows in the same order — across pool sizes, replacement
//! policies, and worker counts, and must stay that way while concurrent
//! writers churn the heap under pinned MVCC snapshots.
//!
//! The sweep reconfigures one live engine (unbounded → 8 MiB → back),
//! so it also exercises the spill/unspill transitions: bounding the
//! pool pages index leaves out, unbounding faults them back to
//! resident entries.

use jackpine::bench::load_dataset;
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::sql::ResultSet;
use jackpine::storage::ReplacementPolicy;
use std::sync::Arc;

const MIB: usize = 1024 * 1024;

/// Pool capacities the corpus is swept over: unbounded (0), a bound
/// that holds the working set, and one that cannot (forced evictions).
const POOL_BYTES: [usize; 3] = [0, 8 * MIB, TINY];

/// Eight frames: far smaller than any corpus here, so every scan
/// cycles pages through the replacement policy.
const TINY: usize = 64 * 1024;
const POLICIES: [ReplacementPolicy; 2] = [ReplacementPolicy::Clock, ReplacementPolicy::LruK];
const WORKERS: [usize; 2] = [1, 4];

fn tiger_db() -> (TigerDataset, Arc<SpatialDb>) {
    let data = TigerDataset::generate(&TigerConfig { scale: 0.02, ..TigerConfig::default() });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("dataset loads");
    (data, db)
}

/// The full micro corpus (topological + analysis suites) on one engine
/// configuration, in suite order.
fn run_corpus(db: &Arc<SpatialDb>, data: &TigerDataset) -> Vec<ResultSet> {
    topo_suite(data)
        .iter()
        .chain(analysis_suite(data).iter())
        .map(|q| db.execute(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.id)))
        .collect()
}

/// Every (pool size, policy, worker count) combination answers the full
/// corpus bit-identically to the unbounded serial reference, with the
/// caches dropped first so bounded runs actually fault pages in.
#[test]
fn corpus_identical_across_pool_configs() {
    let (data, db) = tiger_db();
    db.set_workers(1);
    let reference = run_corpus(&db, &data);

    for bytes in POOL_BYTES {
        for policy in POLICIES {
            for workers in WORKERS {
                db.set_replacement_policy(policy);
                db.set_pool_bytes(bytes);
                db.set_workers(workers);
                db.clear_caches();
                let got = run_corpus(&db, &data);
                assert_eq!(
                    reference, got,
                    "corpus differs at pool_bytes={bytes}, policy={}, workers={workers}",
                    policy.name()
                );
                if bytes != 0 {
                    let stats = db.pool_stats();
                    assert!(
                        stats.cold_pins > 0,
                        "bounded run (pool_bytes={bytes}) never faulted a page"
                    );
                }
            }
        }
    }
}

/// Bounding the pool spills index leaves; unbounding pulls them back.
/// Both transitions preserve results, and the eight-frame bound
/// (smaller than the dataset's heap) must evict.
#[test]
fn resize_transitions_preserve_results_and_evict_when_undersized() {
    let (data, db) = tiger_db();
    db.set_workers(1);
    let reference = run_corpus(&db, &data);

    db.set_pool_bytes(TINY);
    db.clear_caches();
    assert_eq!(reference, run_corpus(&db, &data), "eight-frame bound changes results");
    let stats = db.pool_stats();
    assert!(stats.evictions > 0, "an eight-frame pool must evict on this corpus");
    assert!(stats.dirty_writebacks > 0 || stats.cold_pins > 0, "pool never cycled a frame");

    db.set_pool_bytes(0);
    assert_eq!(reference, run_corpus(&db, &data), "unbounding changes results");
}

/// Concurrent writers churn an indexed table through a deliberately
/// tiny pool — every insert dirties pages that evict mid-transaction —
/// while readers hold pinned snapshots. Afterwards the bounded engine
/// must agree bit-for-bit with an unbounded engine that applied the
/// same statements.
#[test]
fn concurrent_writers_with_pinned_snapshots_stay_equivalent() {
    let build = |pool_bytes: usize| {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
        for i in 0..256 {
            db.execute(&format!(
                "INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({} {})'))",
                i % 16,
                i / 16
            ))
            .unwrap();
        }
        db.create_spatial_index("pts", "geom").unwrap();
        db.set_pool_bytes(pool_bytes);
        db
    };
    let bounded = build(TINY);
    let unbounded = build(0);

    for db in [&bounded, &unbounded] {
        // An old generation stays pinned for the whole run: vacuum must
        // defer, and no page a reader can still see may be reclaimed.
        let pin = db.pin_snapshot_handle();
        let writers = 2usize;
        std::thread::scope(|s| {
            for w in 0..writers {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..128 {
                        let id = 1000 + w * 1000 + i;
                        db.execute(&format!(
                            "INSERT INTO pts VALUES ({id}, ST_GeomFromText('POINT ({} {})'))",
                            id % 32,
                            id / 32
                        ))
                        .expect("concurrent insert");
                        if i % 4 == 3 {
                            db.execute(&format!("DELETE FROM pts WHERE id = {}", id - 2))
                                .expect("concurrent delete");
                        }
                    }
                });
            }
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..64 {
                    // Readers run against whatever generation is
                    // current; they must never error or see a torn row.
                    db.execute(
                        "SELECT COUNT(*) FROM pts WHERE ST_Intersects(geom, \
                         ST_GeomFromText('POLYGON ((0 0, 40 0, 40 40, 0 40, 0 0))'))",
                    )
                    .expect("concurrent read");
                }
            });
        });
        drop(pin);
    }

    let corpus = [
        "SELECT COUNT(*) FROM pts",
        "SELECT id FROM pts WHERE ST_Within(geom, \
         ST_GeomFromText('POLYGON ((0 0, 8 0, 8 8, 0 8, 0 0))')) ORDER BY id",
        "SELECT COUNT(*) FROM pts a, pts b WHERE ST_Equals(a.geom, b.geom)",
    ];
    for sql in corpus {
        assert_eq!(
            unbounded.execute(sql).unwrap(),
            bounded.execute(sql).unwrap(),
            "bounded and unbounded engines disagree after concurrent churn: {sql}"
        );
    }
    let stats = bounded.pool_stats();
    assert!(
        stats.dirty_writebacks > 0,
        "churn through an eight-frame pool must write back dirty pages"
    );
}
