//! Seeded interleaving harness: N writer sessions racing M reader
//! sessions over one engine, with the MVCC contract asserted from the
//! reader side and the group-commit contract asserted from the WAL
//! counters.
//!
//! The contract under test:
//!
//! * **Snapshot isolation** — a SELECT pins one commit generation at
//!   statement start and observes exactly the statements published
//!   before it: never a half-applied INSERT batch, UPDATE, or DELETE.
//! * **Statement atomicity** — every DML statement publishes all of its
//!   row effects with one commit-generation store, or none of them
//!   (WAL-failure rollback is covered in `durability.rs`).
//! * **Group commit** — with per-commit fsync on, concurrent commits
//!   batch their fsyncs through the pipeline: exactly one fsync per
//!   batch, every commit counted in exactly one batch.

mod common;

use jackpine::engine::{DurabilityOptions, EngineProfile, SpatialDb};
use jackpine::storage::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Deterministic xorshift64* — the harness must replay identically for
/// a given seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        other => panic!("expected an integer count, got {other:?}"),
    }
}

const FLIP_ROWS: i64 = 40;
const BATCH: i64 = 7;

/// Creates and seeds the harness tables (outside any metric bracket:
/// DDL logs through direct WAL appends, not the commit pipeline).
fn setup_tables(db: &Arc<SpatialDb>) {
    db.execute("CREATE TABLE flip (id BIGINT, val BIGINT)").unwrap();
    let vals: Vec<String> = (0..FLIP_ROWS).map(|i| format!("({i}, 0)")).collect();
    db.execute(&format!("INSERT INTO flip VALUES {}", vals.join(", "))).unwrap();
    db.execute("CREATE TABLE churn (tag BIGINT, seq BIGINT)").unwrap();
}

/// The interleaving harness proper. `writers` sessions each run
/// `rounds` seeded DML statements against the `setup_tables` tables
/// while `readers` sessions assert the snapshot invariants until every
/// writer is done. Returns the total number of write statements
/// committed.
fn run_interleaving(
    db: &Arc<SpatialDb>,
    seed: u64,
    writers: u64,
    readers: usize,
    rounds: usize,
) -> u64 {
    use std::sync::atomic::AtomicU64;

    let commits = AtomicU64::new(0);
    let writers_done = AtomicBool::new(false);
    thread::scope(|s| {
        let commits = &commits;
        let writers_done = &writers_done;
        let mut handles = Vec::new();
        for w in 0..writers {
            let db = db.clone();
            handles.push(s.spawn(move || {
                let mut rng = Rng::new(seed ^ (w + 1));
                let mut n = 0u64;
                for round in 0..rounds {
                    match rng.below(3) {
                        0 => {
                            // Whole-table flip: one UPDATE, all rows.
                            db.execute("UPDATE flip SET val = 1 - val").expect("flip");
                            n += 1;
                        }
                        1 => {
                            // One INSERT statement, BATCH rows, then an
                            // exact-batch DELETE. Tags are per-writer
                            // unique, so batches never alias.
                            let tag = (w + 1) * 100_000 + round as u64;
                            let vals: Vec<String> =
                                (0..BATCH).map(|j| format!("({tag}, {j})")).collect();
                            db.execute(&format!("INSERT INTO churn VALUES {}", vals.join(", ")))
                                .expect("batch insert");
                            db.execute(&format!("DELETE FROM churn WHERE tag = {tag}"))
                                .expect("batch delete");
                            n += 2;
                        }
                        _ => {
                            // Count-preserving UPDATE of one churn-free
                            // flip row (exercises delete+reinsert).
                            let id = rng.below(FLIP_ROWS as u64);
                            db.execute(&format!("UPDATE flip SET id = {id} WHERE id = {id}"))
                                .expect("touch");
                            n += 1;
                        }
                    }
                }
                commits.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            }));
        }
        for r in 0..readers {
            let db = db.clone();
            s.spawn(move || {
                let mut rng = Rng::new(seed ^ (0xbeef + r as u64));
                // Readers run until the writers finish, then one final
                // sweep so the quiesced state is also checked.
                loop {
                    let done = writers_done.load(Ordering::Acquire);
                    for _ in 0..8 {
                        match rng.below(3) {
                            0 => {
                                let c = db
                                    .execute("SELECT COUNT(*) FROM flip WHERE val = 0")
                                    .expect("flip read");
                                let n = int(&c.rows[0][0]);
                                assert!(
                                    n == 0 || n == FLIP_ROWS,
                                    "half-applied UPDATE visible: {n} of {FLIP_ROWS} rows \
                                     still at val = 0"
                                );
                            }
                            1 => {
                                let c =
                                    db.execute("SELECT COUNT(*) FROM churn").expect("churn read");
                                let n = int(&c.rows[0][0]);
                                assert_eq!(
                                    n % BATCH,
                                    0,
                                    "half-applied batch visible: {n} churn rows"
                                );
                            }
                            _ => {
                                let c =
                                    db.execute("SELECT COUNT(*) FROM flip").expect("count read");
                                assert_eq!(
                                    int(&c.rows[0][0]),
                                    FLIP_ROWS,
                                    "flip table count drifted"
                                );
                            }
                        }
                    }
                    if done {
                        break;
                    }
                }
            });
        }
        for h in handles {
            h.join().expect("writer session");
        }
        writers_done.store(true, Ordering::Release);
    });
    commits.load(std::sync::atomic::Ordering::Relaxed)
}

/// In-memory engine: the isolation and atomicity half of the contract.
#[test]
fn interleaved_sessions_see_only_whole_statements() {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    setup_tables(&db);
    run_interleaving(&db, 0xD15C_0B01, 4, 3, common::cases(30));
    // Quiesced: every batch was drained by its paired delete.
    let c = db.execute("SELECT COUNT(*) FROM churn").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(0));
}

/// Durable engine with per-commit fsync: the group-commit half. Every
/// write statement passes through the commit pipeline; each batch costs
/// exactly one fsync, and the batch sizes account for every commit.
#[test]
fn group_commit_batches_concurrent_fsyncs() {
    let dir = std::env::temp_dir().join(format!("jackpine-interleaving-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let db = SpatialDb::open_durable(
        &dir,
        EngineProfile::ExactRtree,
        DurabilityOptions { sync_each_append: true },
    )
    .unwrap();

    // Bracket only the interleaved DML phase: every statement in it
    // commits through the pipeline, so the counters must balance
    // exactly.
    setup_tables(&db);
    let before = db.metrics_snapshot();
    let commits = run_interleaving(&db, 0x6C0B_A17E, 6, 2, common::cases(20));
    let delta = db.metrics_snapshot().delta_since(&before);

    let batches = delta.counter("group_commit_batches");
    let batched_commits = delta.counter("group_commit_size");
    assert_eq!(
        batched_commits, commits,
        "every write statement must pass through the commit pipeline"
    );
    assert!(batches >= 1, "no commit batches recorded");
    assert!(
        batches <= batched_commits,
        "more batches ({batches}) than commits ({batched_commits})"
    );
    // The fsync economy: one fsync per batch, so under concurrency the
    // engine never fsyncs more often than once per committed statement,
    // and the wait histogram saw every commit.
    assert_eq!(
        delta.counter("wal_fsyncs"),
        batches,
        "group commit must cost exactly one fsync per batch"
    );
    assert_eq!(
        delta.commit_wait_us.count, batched_commits,
        "every piped commit must record its wait"
    );

    drop(db);
    // Recovery sees the quiesced state: all churn drained.
    let db = SpatialDb::open_durable(&dir, EngineProfile::ExactRtree, DurabilityOptions::default())
        .unwrap();
    let c = db.execute("SELECT COUNT(*) FROM churn").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(0));
    let c = db.execute("SELECT COUNT(*) FROM flip").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(40));
    std::fs::remove_dir_all(&dir).ok();
}

/// Readers pinned to a snapshot keep their view while writers publish
/// past them: a long statement's snapshot is stable even though the
/// live table has moved on, and dropping the pin releases it.
#[test]
fn pinned_snapshots_outlive_writer_publishes() {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE t (id BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    assert_eq!(db.active_snapshot_count(), 0);
    let pin = db.pin_snapshot_handle();
    let pinned_gen = db.commit_generation();
    assert_eq!(db.active_snapshot_count(), 1);

    // Writers publish past the pin; the pin's generation is unchanged.
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    db.execute("DELETE FROM t WHERE id = 1").unwrap();
    assert!(db.commit_generation() > pinned_gen);

    // The deleted row is invisible live, but its storage cannot be
    // reclaimed while the pin is alive.
    let c = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(3));
    assert!(db.pending_reclaim_len() > 0, "delete must defer reclaim under a pin");

    drop(pin);
    assert_eq!(db.active_snapshot_count(), 0);
    // The next write transaction vacuums the now-unpinned victim.
    db.execute("INSERT INTO t VALUES (5)").unwrap();
    assert_eq!(db.pending_reclaim_len(), 0, "vacuum must drain once the pin drops");
    let c = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(c.rows[0][0], Value::Int(4));
}
