//! Cross-engine integration tests: the two exact profiles must agree on
//! every micro query; the MBR-only profile must return supersets on
//! positively-monotone predicates; index use must never change answers.

use jackpine::bench::load_dataset;
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::storage::Value;
use std::sync::Arc;

fn setup(profile: EngineProfile, data: &TigerDataset) -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(profile));
    load_dataset(&db, data).expect("dataset loads");
    db
}

fn data() -> TigerDataset {
    TigerDataset::generate(&TigerConfig { seed: 77, scale: 0.02 })
}

#[test]
fn exact_profiles_agree_on_every_micro_query() {
    let data = data();
    let rtree = setup(EngineProfile::ExactRtree, &data);
    let grid = setup(EngineProfile::ExactGrid, &data);
    for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
        let a = rtree.execute(&q.sql).unwrap_or_else(|e| panic!("{} on rtree: {e}", q.id));
        let b = grid.execute(&q.sql).unwrap_or_else(|e| panic!("{} on grid: {e}", q.id));
        assert_eq!(a.rows, b.rows, "{} ({}) differs between exact engines", q.id, q.name);
    }
}

#[test]
fn index_toggle_never_changes_answers() {
    let data = data();
    let db = setup(EngineProfile::ExactRtree, &data);
    for q in topo_suite(&data) {
        db.set_use_spatial_index(true);
        let with = db.execute(&q.sql).unwrap_or_else(|e| panic!("{} indexed: {e}", q.id));
        db.set_use_spatial_index(false);
        let without = db.execute(&q.sql).unwrap_or_else(|e| panic!("{} seq: {e}", q.id));
        assert_eq!(with.rows, without.rows, "{} ({}) differs with index off", q.id, q.name);
        db.set_use_spatial_index(true);
    }
}

#[test]
fn mbr_profile_returns_supersets_on_monotone_predicates() {
    let data = data();
    let exact = setup(EngineProfile::ExactRtree, &data);
    let mbr = setup(EngineProfile::MbrOnly, &data);
    // Queries whose MBR evaluation can only add rows: Intersects on a
    // constant region and the roads/river crossing count.
    let monotone = ["T04", "T09", "T14", "T16"];
    let mut strictly_larger = false;
    for q in topo_suite(&data).iter().filter(|q| monotone.contains(&q.id)) {
        let e = count(&exact, &q.sql);
        let m = count(&mbr, &q.sql);
        assert!(m >= e, "{}: MBR count {m} below exact {e}", q.id);
        strictly_larger |= m > e;
    }
    assert!(strictly_larger, "at this scale, at least one MBR count should show false positives");
}

#[test]
fn cold_runs_return_warm_answers() {
    let data = data();
    let db = setup(EngineProfile::ExactRtree, &data);
    for q in topo_suite(&data).iter().take(8) {
        let warm = db.execute(&q.sql).expect("warm run");
        db.clear_caches();
        let cold = db.execute(&q.sql).expect("cold run");
        assert_eq!(warm.rows, cold.rows, "{} cold/warm mismatch", q.id);
    }
}

#[test]
fn micro_queries_have_nontrivial_answers() {
    // Guard against a silently empty benchmark: across the topological
    // suite, a healthy share of queries must return non-zero counts.
    let data = TigerDataset::generate(&TigerConfig { seed: 77, scale: 0.05 });
    let db = setup(EngineProfile::ExactRtree, &data);
    let mut nonzero = 0;
    let mut total = 0;
    for q in topo_suite(&data) {
        if let Some(v) = db.execute(&q.sql).expect("query runs").scalar().and_then(Value::as_i64) {
            total += 1;
            if v > 0 {
                nonzero += 1;
            }
        }
    }
    assert!(
        nonzero * 2 >= total,
        "only {nonzero} of {total} topological queries return rows; dataset too sparse"
    );
}

fn count(db: &Arc<SpatialDb>, sql: &str) -> i64 {
    db.execute(sql).expect("query runs").scalar().and_then(Value::as_i64).unwrap_or(-1)
}
