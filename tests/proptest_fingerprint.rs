//! Property tests for query-fingerprint normalization (seeded PRNG, no
//! external crates): literal-insensitivity, case/whitespace folding,
//! digest stability, and collision-freedom over the benchmark's own
//! query corpus.

mod common;

use common::{cases, test_rng};
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::datagen::rng::Rng;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::obs::digest;
use jackpine::sql::fingerprint::normalize;
use std::collections::HashMap;

/// A random literal: integer, decimal, or quoted string. Numbers stay
/// nonnegative — a leading `-` is a separate token, hence part of the
/// statement shape rather than the literal.
fn literal(rng: &mut Rng) -> String {
    match rng.gen_range(0..3usize) {
        0 => format!("{}", rng.gen_range(0..10_000i64)),
        1 => format!("{:.4}", rng.gen_range(0.0..1000.0f64)),
        _ => {
            let n = rng.gen_range(0..12usize);
            let s: String =
                (0..n).map(|_| char::from(b'a' + rng.gen_range(0..26i64) as u8)).collect();
            format!("'{s}'")
        }
    }
}

/// Statement templates with two literal slots, spanning the grammar the
/// benchmark exercises.
fn template(rng: &mut Rng, l1: &str, l2: &str) -> String {
    match rng.gen_range(0..5usize) {
        0 => format!("SELECT COUNT(*) FROM roads WHERE id = {l1} AND name = {l2}"),
        1 => format!(
            "SELECT id FROM pointlm WHERE ST_Within(geom, ST_MakeEnvelope({l1}, 0, {l2}, 9))"
        ),
        2 => format!("INSERT INTO pts VALUES ({l1}, {l2})"),
        3 => format!("SELECT a.id FROM t a WHERE x >= {l1} ORDER BY id LIMIT {l2}"),
        _ => format!("UPDATE roads SET name = {l2} WHERE id = {l1}"),
    }
}

/// Changing only the literals never changes the fingerprint.
#[test]
fn literal_insensitivity() {
    let mut rng = test_rng("literal_insensitivity");
    for _ in 0..cases(200) {
        let t = rng.gen_range(0..5u64);
        let (a1, a2) = (literal(&mut rng), literal(&mut rng));
        let (b1, b2) = (literal(&mut rng), literal(&mut rng));
        // Seeding both draws with the same value picks the same template.
        let qa = template(&mut Rng::seed_from_u64(t), &a1, &a2);
        let qb = template(&mut Rng::seed_from_u64(t), &b1, &b2);
        assert_eq!(
            normalize(&qa),
            normalize(&qb),
            "literal change altered the shape:\n  {qa}\n  {qb}"
        );
        assert_eq!(digest(&normalize(&qa)), digest(&normalize(&qb)));
    }
}

/// Random case flips and whitespace injection between tokens fold away.
#[test]
fn case_and_whitespace_folding() {
    const WS: &[&str] = &[" ", "  ", "\t", "\n", " \n "];
    let mut rng = test_rng("case_and_whitespace_folding");
    for _ in 0..cases(200) {
        let parts = [
            "SELECT",
            "COUNT",
            "(",
            "*",
            ")",
            "FROM",
            "roads",
            "WHERE",
            "ST_Crosses",
            "(",
            "geom",
            ",",
            "ST_GeomFromText",
            "(",
            "'LINESTRING (0 0, 1 1)'",
            ")",
            ")",
            "AND",
            "id",
            ">=",
            "42",
        ];
        let canonical = parts.join(" ");
        // Rebuild with random whitespace and random per-char case on
        // identifiers (string literals must survive untouched).
        let mut mangled = String::new();
        for p in parts {
            let piece: String = if p.starts_with('\'') {
                p.to_string()
            } else {
                p.chars()
                    .map(|c| {
                        if rng.gen_range(0..2i64) == 0 {
                            c.to_ascii_uppercase()
                        } else {
                            c.to_ascii_lowercase()
                        }
                    })
                    .collect()
            };
            mangled.push_str(&piece);
            mangled.push_str(WS[rng.gen_range(0..WS.len())]);
        }
        assert_eq!(
            normalize(&canonical),
            normalize(&mangled),
            "case/whitespace mangling altered the shape:\n  {mangled}"
        );
    }
}

/// Normalization is idempotent and the digest is stable across calls.
#[test]
fn normalize_is_idempotent_and_digest_pinned() {
    let mut rng = test_rng("normalize_is_idempotent_and_digest_pinned");
    for _ in 0..cases(100) {
        let (l1, l2) = (literal(&mut rng), literal(&mut rng));
        let q = template(&mut rng, &l1, &l2);
        let n1 = normalize(&q);
        assert_eq!(n1, normalize(&n1), "normalize must be idempotent on {q}");
        assert_eq!(digest(&n1), digest(&n1));
    }
    // Frozen end-to-end: stored fingerprints must survive upgrades, so
    // the normalized text and its FNV-1a digest are pinned verbatim.
    assert_eq!(normalize("SELECT * FROM t WHERE id = 1"), "select * from t where id = ?");
    assert_eq!(digest("select * from t where id = ?"), 0x90356c2a5f55a6f1);
}

/// Distinct statement shapes never collide across the benchmark's own
/// query corpus (every micro query, topological and analysis).
#[test]
fn benchmark_corpus_has_no_collisions() {
    let data = TigerDataset::generate(&TigerConfig { scale: 0.01, ..TigerConfig::default() });
    let mut by_digest: HashMap<u64, String> = HashMap::new();
    for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
        let shape = normalize(&q.sql);
        let d = digest(&shape);
        if let Some(prev) = by_digest.insert(d, shape.clone()) {
            assert_eq!(
                prev, shape,
                "digest collision between distinct shapes:\n  {prev}\n  {shape}"
            );
        }
    }
    // The corpus has many genuinely distinct shapes, not one.
    assert!(by_digest.len() >= 20, "corpus too small: {}", by_digest.len());
}

/// Randomly generated distinct shapes (varying identifiers, not
/// literals) get distinct digests.
#[test]
fn random_distinct_shapes_stay_distinct() {
    let mut rng = test_rng("random_distinct_shapes_stay_distinct");
    let mut by_digest: HashMap<u64, String> = HashMap::new();
    for i in 0..cases(300) {
        // Identifier varies with i, so every shape is genuinely new.
        let q = format!("SELECT col_{i} FROM table_{} WHERE x = 5", rng.gen_range(0..10i64));
        let shape = normalize(&q);
        if let Some(prev) = by_digest.insert(digest(&shape), shape.clone()) {
            assert_eq!(prev, shape, "collision:\n  {prev}\n  {shape}");
        }
    }
}
