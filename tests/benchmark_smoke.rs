//! End-to-end benchmark smoke test: the full Jackpine pipeline (dataset →
//! load → micro suites → macro scenarios → feature matrix → report) runs
//! on every engine profile at a small scale.

use jackpine::bench::driver::{CacheMode, Driver};
use jackpine::bench::features::{feature_matrix, PROBED_FUNCTIONS};
use jackpine::bench::load_dataset;
use jackpine::bench::macrobench::{all_scenarios, run_scenario, ScenarioConfig};
use jackpine::bench::micro::{analysis_suite, topo_suite};
use jackpine::bench::report::Table;
use jackpine::datagen::{TigerConfig, TigerDataset};
use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use std::sync::Arc;

#[test]
fn full_benchmark_pipeline_runs_on_all_profiles() {
    let data = TigerDataset::generate(&TigerConfig { seed: 123, scale: 0.02 });
    let driver = Driver { repetitions: 1, warmup: 0, cache_mode: CacheMode::Warm };

    let mut engines = Vec::new();
    for profile in EngineProfile::ALL {
        let db = Arc::new(SpatialDb::new(profile));
        let summary = load_dataset(&db, &data).expect("load");
        assert_eq!(summary.total_rows(), data.total_rows());
        engines.push(db);
    }

    // Micro suites: every query must either run or fail with the
    // documented unsupported-feature error.
    for q in topo_suite(&data).iter().chain(analysis_suite(&data).iter()) {
        for e in &engines {
            match driver.run_query(e, q.id, &q.sql) {
                Ok(m) => assert!(m.stats.n == 1, "{} on {}", q.id, e.name()),
                Err(err) => {
                    let msg = err.to_string();
                    assert!(
                        msg.contains("not supported"),
                        "{} on {} failed unexpectedly: {msg}",
                        q.id,
                        e.name()
                    );
                }
            }
        }
    }

    // Macro scenarios.
    let scenarios = all_scenarios(&data, &ScenarioConfig { seed: 9, sessions: 1 });
    assert_eq!(scenarios.len(), 6);
    for s in &scenarios {
        for e in &engines {
            let r = run_scenario(e, s).expect("scenario runs");
            assert_eq!(r.executed + r.skipped, s.steps.len(), "{} on {}", s.id, e.name());
        }
    }

    // Feature matrix covers all probes for all engines.
    let conns: Vec<&dyn SpatialConnector> =
        engines.iter().map(|e| e as &dyn SpatialConnector).collect();
    let matrix = feature_matrix(&conns);
    assert_eq!(matrix.len(), 3);
    for row in &matrix {
        assert_eq!(row.support.len(), PROBED_FUNCTIONS.len());
    }

    // Reporting round trip.
    let mut t = Table::new("smoke", &["engine", "functions"]);
    for row in &matrix {
        t.push_row(vec![row.engine.clone(), row.supported_count().to_string()]);
    }
    let rendered = t.render();
    assert!(rendered.contains("exact-rtree"));
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 4);
}

#[test]
fn cold_mode_is_slower_than_warm_on_scan_heavy_query() {
    // Not a strict-timing test (CI noise), but the cold path must at
    // least run and produce sane stats.
    let data = TigerDataset::generate(&TigerConfig { seed: 123, scale: 0.05 });
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    load_dataset(&db, &data).expect("load");
    let sql = "SELECT SUM(ST_Length(geom)) FROM roads";
    let warm = Driver { repetitions: 3, warmup: 1, cache_mode: CacheMode::Warm }
        .run_query(&db, "warm", sql)
        .expect("warm runs");
    let cold = Driver { repetitions: 3, warmup: 0, cache_mode: CacheMode::Cold }
        .run_query(&db, "cold", sql)
        .expect("cold runs");
    assert_eq!(warm.scalar, cold.scalar, "cold and warm answers differ");
    assert!(cold.stats.mean_ms > 0.0 && warm.stats.mean_ms > 0.0);
}
