//! Property tests pinning the geometry kernel's invariants.

mod common;

use common::{geometry, point, polygon, star_polygon};
use jackpine::geom::algorithms::{
    area, buffer, convex_hull, difference, distance, intersection, simplify, union,
};
use jackpine::geom::algorithms::locate::{locate_in_polygon, Location};
use jackpine::geom::algorithms::orientation::{orient2d, Orientation};
use jackpine::geom::{wkb, wkt, Coord, Geometry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- serialization roundtrips ------------------------------------

    #[test]
    fn wkt_roundtrip(g in geometry()) {
        let text = wkt::write(&g);
        let back = wkt::parse(&text).expect("written WKT must parse");
        // Float formatting is exact (shortest roundtrip form), so the
        // geometry must be bit-identical.
        prop_assert_eq!(g, back);
    }

    #[test]
    fn wkb_roundtrip(g in geometry()) {
        let bytes = wkb::encode(&g);
        let back = wkb::decode(&bytes).expect("encoded WKB must decode");
        prop_assert_eq!(g, back);
    }

    // ----- orientation predicate ----------------------------------------

    #[test]
    fn orient2d_cyclic_invariance(
        (ax, ay, bx, by, cx, cy) in (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64,
                                     -1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64)
    ) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, c, a));
        prop_assert_eq!(orient2d(a, b, c), orient2d(c, a, b));
        // Swapping two points flips the sign.
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }

    #[test]
    fn orient2d_degenerate_duplicates_are_collinear(
        (ax, ay, bx, by) in (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64)
    ) {
        let (a, b) = (Coord::new(ax, ay), Coord::new(bx, by));
        prop_assert_eq!(orient2d(a, a, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, a), Orientation::Collinear);
    }

    // ----- hull -----------------------------------------------------------

    #[test]
    fn convex_hull_contains_inputs_and_is_idempotent(g in geometry()) {
        let hull = convex_hull(&g).expect("hull computes");
        // Hull area dominates the input's.
        prop_assert!(area(&hull) + 1e-9 >= area(&g));
        // Idempotence.
        let hull2 = convex_hull(&hull).expect("hull of hull computes");
        prop_assert!((area(&hull) - area(&hull2)).abs() <= 1e-9 * area(&hull).max(1.0));
        // Every original vertex is inside or on the hull.
        if let (Geometry::Polygon(hp), Geometry::Polygon(p)) = (&hull, &g) {
            for c in p.exterior().coords() {
                prop_assert_ne!(locate_in_polygon(*c, hp), Location::Exterior);
            }
        }
    }

    // ----- measures ---------------------------------------------------------

    #[test]
    fn area_is_nonnegative_and_envelope_bounds_it(g in geometry()) {
        let a = area(&g);
        prop_assert!(a >= 0.0);
        let env = g.envelope();
        prop_assert!(a <= env.area() + 1e-9);
    }

    // ----- simplification -----------------------------------------------------

    #[test]
    fn simplify_never_adds_vertices(g in geometry(), tol in 0.0..5.0f64) {
        let s = simplify(&g, tol).expect("simplify computes");
        prop_assert!(s.num_coords() <= g.num_coords());
        // The simplified geometry stays within the original envelope.
        prop_assert!(g.envelope().expanded_by(1e-9).contains_envelope(&s.envelope()));
    }

    // ----- overlay ---------------------------------------------------------------

    #[test]
    fn overlay_inclusion_exclusion(a in star_polygon(), b in star_polygon()) {
        let (ga, gb) = (Geometry::Polygon(a), Geometry::Polygon(b));
        let u = area(&union(&ga, &gb).expect("union computes"));
        let i = area(&intersection(&ga, &gb).expect("intersection computes"));
        let total = area(&ga) + area(&gb);
        let tol = total.max(1.0) * 1e-6;
        prop_assert!((u + i - total).abs() < tol, "|A∪B|+|A∩B| = {} vs |A|+|B| = {}", u + i, total);
        // Monotonicity.
        prop_assert!(u + tol >= area(&ga).max(area(&gb)));
        prop_assert!(i <= area(&ga).min(area(&gb)) + tol);
    }

    #[test]
    fn difference_partitions_area(a in star_polygon(), b in star_polygon()) {
        let (ga, gb) = (Geometry::Polygon(a), Geometry::Polygon(b));
        let d = area(&difference(&ga, &gb).expect("difference computes"));
        let i = area(&intersection(&ga, &gb).expect("intersection computes"));
        let tol = (area(&ga) + area(&gb)).max(1.0) * 1e-6;
        prop_assert!((d + i - area(&ga)).abs() < tol, "|A−B| + |A∩B| = {} vs |A| = {}", d + i, area(&ga));
    }

    // ----- distance -----------------------------------------------------------------

    #[test]
    fn distance_is_symmetric_and_nonnegative(a in geometry(), b in geometry()) {
        let d1 = distance(&a, &b);
        let d2 = distance(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9 || (d1.is_infinite() && d2.is_infinite()));
        prop_assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn positive_distance_implies_envelope_gap_bound(a in polygon(), b in polygon()) {
        // Geometry distance is at least the envelope distance.
        let d = distance(&a, &b);
        let ed = a.envelope().distance_to_envelope(&b.envelope());
        prop_assert!(d + 1e-9 >= ed, "geom distance {d} < envelope distance {ed}");
    }

    // ----- buffer ---------------------------------------------------------------------

    #[test]
    fn point_buffer_area_brackets_circle(p in point(), r in 0.1..5.0f64) {
        let b = buffer(&p, r).expect("buffer computes");
        let a = area(&b);
        let exact = std::f64::consts::PI * r * r;
        // Inscribed polygon: below πr² but within 2 %.
        prop_assert!(a <= exact + 1e-9);
        prop_assert!(a >= exact * 0.97, "buffer area {a} too small vs {exact}");
    }
}
