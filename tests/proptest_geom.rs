//! Randomized tests pinning the geometry kernel's invariants
//! (deterministic seeded PRNG; more iterations under `slow-tests`).

mod common;

use common::{cases, geometry, point, polygon, star_polygon, test_rng};
use jackpine::geom::algorithms::locate::{locate_in_polygon, Location};
use jackpine::geom::algorithms::orientation::{orient2d, Orientation};
use jackpine::geom::algorithms::{
    area, buffer, convex_hull, difference, distance, intersection, simplify, union,
};
use jackpine::geom::{wkb, wkt, Coord, Geometry};

// ----- serialization roundtrips ------------------------------------

#[test]
fn wkt_roundtrip() {
    let mut rng = test_rng("wkt_roundtrip");
    for _ in 0..cases(64) {
        let g = geometry(&mut rng);
        let text = wkt::write(&g);
        let back = wkt::parse(&text).expect("written WKT must parse");
        // Float formatting is exact (shortest roundtrip form), so the
        // geometry must be bit-identical.
        assert_eq!(g, back);
    }
}

#[test]
fn wkb_roundtrip() {
    let mut rng = test_rng("wkb_roundtrip");
    for _ in 0..cases(64) {
        let g = geometry(&mut rng);
        let bytes = wkb::encode(&g);
        let back = wkb::decode(&bytes).expect("encoded WKB must decode");
        assert_eq!(g, back);
    }
}

// ----- orientation predicate ----------------------------------------

#[test]
fn orient2d_cyclic_invariance() {
    let mut rng = test_rng("orient2d_cyclic_invariance");
    for _ in 0..cases(64) {
        let mut c = || Coord::new(rng.gen_range(-1e3..1e3f64), rng.gen_range(-1e3..1e3f64));
        let (a, b, c) = (c(), c(), c());
        assert_eq!(orient2d(a, b, c), orient2d(b, c, a));
        assert_eq!(orient2d(a, b, c), orient2d(c, a, b));
        // Swapping two points flips the sign.
        assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }
}

#[test]
fn orient2d_degenerate_duplicates_are_collinear() {
    let mut rng = test_rng("orient2d_degenerate");
    for _ in 0..cases(64) {
        let mut c = || Coord::new(rng.gen_range(-1e3..1e3f64), rng.gen_range(-1e3..1e3f64));
        let (a, b) = (c(), c());
        assert_eq!(orient2d(a, a, b), Orientation::Collinear);
        assert_eq!(orient2d(a, b, b), Orientation::Collinear);
        assert_eq!(orient2d(a, b, a), Orientation::Collinear);
    }
}

// ----- hull -----------------------------------------------------------

#[test]
fn convex_hull_contains_inputs_and_is_idempotent() {
    let mut rng = test_rng("convex_hull");
    for _ in 0..cases(64) {
        let g = geometry(&mut rng);
        let hull = convex_hull(&g).expect("hull computes");
        // Hull area dominates the input's.
        assert!(area(&hull) + 1e-9 >= area(&g));
        // Idempotence.
        let hull2 = convex_hull(&hull).expect("hull of hull computes");
        assert!((area(&hull) - area(&hull2)).abs() <= 1e-9 * area(&hull).max(1.0));
        // Every original vertex is inside or on the hull.
        if let (Geometry::Polygon(hp), Geometry::Polygon(p)) = (&hull, &g) {
            for c in p.exterior().coords() {
                assert_ne!(locate_in_polygon(*c, hp), Location::Exterior);
            }
        }
    }
}

// ----- measures ---------------------------------------------------------

#[test]
fn area_is_nonnegative_and_envelope_bounds_it() {
    let mut rng = test_rng("area_nonnegative");
    for _ in 0..cases(64) {
        let g = geometry(&mut rng);
        let a = area(&g);
        assert!(a >= 0.0);
        let env = g.envelope();
        assert!(a <= env.area() + 1e-9);
    }
}

// ----- simplification -----------------------------------------------------

#[test]
fn simplify_never_adds_vertices() {
    let mut rng = test_rng("simplify_never_adds");
    for _ in 0..cases(64) {
        let g = geometry(&mut rng);
        let tol = rng.gen_range(0.0..5.0f64);
        let s = simplify(&g, tol).expect("simplify computes");
        assert!(s.num_coords() <= g.num_coords());
        // The simplified geometry stays within the original envelope.
        assert!(g.envelope().expanded_by(1e-9).contains_envelope(&s.envelope()));
    }
}

// ----- overlay ---------------------------------------------------------------

#[test]
fn overlay_inclusion_exclusion() {
    let mut rng = test_rng("overlay_inclusion_exclusion");
    for _ in 0..cases(64) {
        let ga = Geometry::Polygon(star_polygon(&mut rng));
        let gb = Geometry::Polygon(star_polygon(&mut rng));
        let u = area(&union(&ga, &gb).expect("union computes"));
        let i = area(&intersection(&ga, &gb).expect("intersection computes"));
        let total = area(&ga) + area(&gb);
        let tol = total.max(1.0) * 1e-6;
        assert!((u + i - total).abs() < tol, "|A∪B|+|A∩B| = {} vs |A|+|B| = {}", u + i, total);
        // Monotonicity.
        assert!(u + tol >= area(&ga).max(area(&gb)));
        assert!(i <= area(&ga).min(area(&gb)) + tol);
    }
}

#[test]
fn difference_partitions_area() {
    let mut rng = test_rng("difference_partitions_area");
    for _ in 0..cases(64) {
        let ga = Geometry::Polygon(star_polygon(&mut rng));
        let gb = Geometry::Polygon(star_polygon(&mut rng));
        let d = area(&difference(&ga, &gb).expect("difference computes"));
        let i = area(&intersection(&ga, &gb).expect("intersection computes"));
        let tol = (area(&ga) + area(&gb)).max(1.0) * 1e-6;
        assert!(
            (d + i - area(&ga)).abs() < tol,
            "|A−B| + |A∩B| = {} vs |A| = {}",
            d + i,
            area(&ga)
        );
    }
}

// ----- distance -----------------------------------------------------------------

#[test]
fn distance_is_symmetric_and_nonnegative() {
    let mut rng = test_rng("distance_symmetric");
    for _ in 0..cases(64) {
        let a = geometry(&mut rng);
        let b = geometry(&mut rng);
        let d1 = distance(&a, &b);
        let d2 = distance(&b, &a);
        assert!(d1 >= 0.0);
        assert!((d1 - d2).abs() < 1e-9 || (d1.is_infinite() && d2.is_infinite()));
        assert_eq!(distance(&a, &a), 0.0);
    }
}

#[test]
fn positive_distance_implies_envelope_gap_bound() {
    let mut rng = test_rng("distance_envelope_gap");
    for _ in 0..cases(64) {
        let a = polygon(&mut rng);
        let b = polygon(&mut rng);
        // Geometry distance is at least the envelope distance.
        let d = distance(&a, &b);
        let ed = a.envelope().distance_to_envelope(&b.envelope());
        assert!(d + 1e-9 >= ed, "geom distance {d} < envelope distance {ed}");
    }
}

// ----- buffer ---------------------------------------------------------------------

#[test]
fn point_buffer_area_brackets_circle() {
    let mut rng = test_rng("point_buffer_area");
    for _ in 0..cases(64) {
        let p = point(&mut rng);
        let r = rng.gen_range(0.1..5.0f64);
        let b = buffer(&p, r).expect("buffer computes");
        let a = area(&b);
        let exact = std::f64::consts::PI * r * r;
        // Inscribed polygon: below πr² but within 2 %.
        assert!(a <= exact + 1e-9);
        assert!(a >= exact * 0.97, "buffer area {a} too small vs {exact}");
    }
}
