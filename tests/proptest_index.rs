//! Randomized tests: the spatial indexes must agree with brute force
//! under arbitrary data and query mixes (deterministic seeded PRNG).

mod common;

use common::{cases, test_rng};
use jackpine::datagen::rng::Rng;
use jackpine::geom::{Coord, Envelope};
use jackpine::index::{GridIndex, OrderedIndex, RTree, RTreeConfig};

/// An arbitrary envelope in a bounded range.
fn env(rng: &mut Rng) -> Envelope {
    let x = rng.gen_range(-100.0..100.0f64);
    let y = rng.gen_range(-100.0..100.0f64);
    let w = rng.gen_range(0.0..20.0f64);
    let h = rng.gen_range(0.0..20.0f64);
    Envelope::new(x, y, x + w, y + h)
}

fn env_items(rng: &mut Rng, max: usize) -> Vec<(Envelope, usize)> {
    let n = rng.gen_range(1..max);
    (0..n).map(|i| (env(rng), i)).collect()
}

fn brute_window(items: &[(Envelope, usize)], w: &Envelope) -> Vec<usize> {
    let mut v: Vec<usize> =
        items.iter().filter(|(e, _)| w.intersects(e)).map(|(_, i)| *i).collect();
    v.sort_unstable();
    v
}

#[test]
fn rtree_window_matches_brute_force() {
    let mut rng = test_rng("rtree_window_matches_brute_force");
    for _ in 0..cases(32) {
        let items = env_items(&mut rng, 300);
        let window = env(&mut rng);
        // Incremental insert path.
        let mut t: RTree<usize> = RTree::default();
        for (e, v) in &items {
            t.insert(*e, *v);
        }
        let mut got = t.window(&window);
        got.sort_unstable();
        assert_eq!(&got, &brute_window(&items, &window));
        // Bulk-load path must agree too.
        let bulk = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let mut got = bulk.window(&window);
        got.sort_unstable();
        assert_eq!(&got, &brute_window(&items, &window));
        // And the parallel bulk load, at several worker counts.
        for workers in [2usize, 4] {
            let par = RTree::bulk_load_parallel(RTreeConfig::default(), items.clone(), workers);
            let mut got = par.window(&window);
            got.sort_unstable();
            assert_eq!(&got, &brute_window(&items, &window));
        }
    }
}

#[test]
fn rtree_survives_deletions() {
    let mut rng = test_rng("rtree_survives_deletions");
    for _ in 0..cases(32) {
        let mut items = env_items(&mut rng, 200);
        if items.len() < 2 {
            items.push((env(&mut rng), items.len()));
        }
        let window = env(&mut rng);
        let mut t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        // Delete every other entry.
        for (e, v) in items.iter().step_by(2) {
            assert_eq!(t.remove(e, |x| x == v), Some(*v));
        }
        let remaining: Vec<(Envelope, usize)> = items.iter().skip(1).step_by(2).cloned().collect();
        let mut got = t.window(&window);
        got.sort_unstable();
        assert_eq!(got, brute_window(&remaining, &window));
        assert_eq!(t.len(), remaining.len());
    }
}

#[test]
fn grid_agrees_with_rtree() {
    let mut rng = test_rng("grid_agrees_with_rtree");
    for _ in 0..cases(32) {
        let items = env_items(&mut rng, 200);
        let window = env(&mut rng);
        let cells = rng.gen_range(2..24usize);
        let extent = Envelope::new(-110.0, -110.0, 130.0, 130.0);
        let mut g: GridIndex<usize> = GridIndex::new(extent, cells, cells);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        let mut got = g.window(&window);
        got.sort_unstable();
        assert_eq!(got, brute_window(&items, &window));
    }
}

#[test]
fn knn_orders_match_brute_force() {
    let mut rng = test_rng("knn_orders_match_brute_force");
    for _ in 0..cases(32) {
        let items = env_items(&mut rng, 150);
        let q = Coord::new(rng.gen_range(-120.0..120.0f64), rng.gen_range(-120.0..120.0f64));
        let k = rng.gen_range(1..12usize);
        let t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let got = t.nearest(q, k);
        let mut dists: Vec<f64> = items.iter().map(|(e, _)| e.distance_to_coord(q)).collect();
        dists.sort_by(f64::total_cmp);
        assert_eq!(got.len(), k.min(items.len()));
        for (i, (d, _)) in got.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-9, "k={i}: rtree {d} vs brute {}", dists[i]);
        }
        // Grid kNN must agree on distances as well.
        let extent = Envelope::new(-110.0, -110.0, 130.0, 130.0);
        let mut g: GridIndex<usize> = GridIndex::new(extent, 16, 16);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        let got = g.nearest(q, k);
        for (i, (d, _)) in got.iter().enumerate() {
            assert!((d - dists[i]).abs() < 1e-9, "grid k={i}: {d} vs brute {}", dists[i]);
        }
    }
}

#[test]
fn ordered_index_matches_btree_semantics() {
    let mut rng = test_rng("ordered_index_matches_btree_semantics");
    for _ in 0..cases(32) {
        let n = rng.gen_range(0..200usize);
        let pairs: Vec<(i64, usize)> =
            (0..n).map(|_| (rng.gen_range(0..50i64), rng.gen_range(0..1000usize))).collect();
        let probe = rng.gen_range(0..50i64);
        let (lo, hi) = (rng.gen_range(0..50i64), rng.gen_range(0..50i64));
        let mut idx: OrderedIndex<i64, usize> = OrderedIndex::new();
        for (k, v) in &pairs {
            idx.insert(*k, *v);
        }
        assert_eq!(idx.len(), pairs.len());
        let mut got = idx.get(&probe).to_vec();
        got.sort_unstable();
        let mut want: Vec<usize> =
            pairs.iter().filter(|(k, _)| *k == probe).map(|(_, v)| *v).collect();
        want.sort_unstable();
        assert_eq!(got, want);

        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut got = idx.range(&lo, &hi);
        got.sort_unstable();
        let mut want: Vec<usize> =
            pairs.iter().filter(|(k, _)| *k >= lo && *k <= hi).map(|(_, v)| *v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
