//! Property tests: the spatial indexes must agree with brute force under
//! arbitrary data and query mixes.

use jackpine::geom::{Coord, Envelope};
use jackpine::index::{GridIndex, OrderedIndex, RTree, RTreeConfig};
use proptest::prelude::*;

/// Strategy: an arbitrary envelope in a bounded range.
fn env() -> impl Strategy<Value = Envelope> {
    (-100.0..100.0f64, -100.0..100.0f64, 0.0..20.0f64, 0.0..20.0f64)
        .prop_map(|(x, y, w, h)| Envelope::new(x, y, x + w, y + h))
}

fn brute_window(items: &[(Envelope, usize)], w: &Envelope) -> Vec<usize> {
    let mut v: Vec<usize> =
        items.iter().filter(|(e, _)| w.intersects(e)).map(|(_, i)| *i).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rtree_window_matches_brute_force(
        envs in proptest::collection::vec(env(), 1..300),
        window in env(),
    ) {
        let items: Vec<(Envelope, usize)> =
            envs.into_iter().enumerate().map(|(i, e)| (e, i)).collect();
        // Incremental insert path.
        let mut t: RTree<usize> = RTree::default();
        for (e, v) in &items {
            t.insert(*e, *v);
        }
        let mut got = t.window(&window);
        got.sort_unstable();
        prop_assert_eq!(&got, &brute_window(&items, &window));
        // Bulk-load path must agree too.
        let bulk = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let mut got = bulk.window(&window);
        got.sort_unstable();
        prop_assert_eq!(&got, &brute_window(&items, &window));
    }

    #[test]
    fn rtree_survives_deletions(
        envs in proptest::collection::vec(env(), 2..200),
        window in env(),
    ) {
        let items: Vec<(Envelope, usize)> =
            envs.into_iter().enumerate().map(|(i, e)| (e, i)).collect();
        let mut t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        // Delete every other entry.
        for (e, v) in items.iter().step_by(2) {
            prop_assert_eq!(t.remove(e, |x| x == v), Some(*v));
        }
        let remaining: Vec<(Envelope, usize)> =
            items.iter().skip(1).step_by(2).cloned().collect();
        let mut got = t.window(&window);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&remaining, &window));
        prop_assert_eq!(t.len(), remaining.len());
    }

    #[test]
    fn grid_agrees_with_rtree(
        envs in proptest::collection::vec(env(), 1..200),
        window in env(),
        cells in 2..24usize,
    ) {
        let items: Vec<(Envelope, usize)> =
            envs.into_iter().enumerate().map(|(i, e)| (e, i)).collect();
        let extent = Envelope::new(-110.0, -110.0, 130.0, 130.0);
        let mut g: GridIndex<usize> = GridIndex::new(extent, cells, cells);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        let mut got = g.window(&window);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&items, &window));
    }

    #[test]
    fn knn_orders_match_brute_force(
        envs in proptest::collection::vec(env(), 1..150),
        qx in -120.0..120.0f64,
        qy in -120.0..120.0f64,
        k in 1..12usize,
    ) {
        let items: Vec<(Envelope, usize)> =
            envs.into_iter().enumerate().map(|(i, e)| (e, i)).collect();
        let q = Coord::new(qx, qy);
        let t = RTree::bulk_load(RTreeConfig::default(), items.clone());
        let got = t.nearest(q, k);
        let mut dists: Vec<f64> =
            items.iter().map(|(e, _)| e.distance_to_coord(q)).collect();
        dists.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k.min(items.len()));
        for (i, (d, _)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9,
                "k={i}: rtree {d} vs brute {}", dists[i]);
        }
        // Grid kNN must agree on distances as well.
        let extent = Envelope::new(-110.0, -110.0, 130.0, 130.0);
        let mut g: GridIndex<usize> = GridIndex::new(extent, 16, 16);
        for (e, v) in &items {
            g.insert(*e, *v);
        }
        let got = g.nearest(q, k);
        for (i, (d, _)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9,
                "grid k={i}: {d} vs brute {}", dists[i]);
        }
    }

    #[test]
    fn ordered_index_matches_btree_semantics(
        pairs in proptest::collection::vec((0i64..50, 0usize..1000), 0..200),
        probe in 0i64..50,
        (lo, hi) in (0i64..50, 0i64..50),
    ) {
        let mut idx: OrderedIndex<i64, usize> = OrderedIndex::new();
        for (k, v) in &pairs {
            idx.insert(*k, *v);
        }
        prop_assert_eq!(idx.len(), pairs.len());
        let mut got = idx.get(&probe).to_vec();
        got.sort_unstable();
        let mut want: Vec<usize> =
            pairs.iter().filter(|(k, _)| *k == probe).map(|(_, v)| *v).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut got = idx.range(&lo, &hi);
        got.sort_unstable();
        let mut want: Vec<usize> = pairs
            .iter()
            .filter(|(k, _)| *k >= lo && *k <= hi)
            .map(|(_, v)| *v)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
