//! Randomized tests for the two statistics layers: the benchmark's
//! latency summaries (`jackpine::bench::Stats`) and the observability
//! histograms (`jackpine::obs`). Deterministic seeded PRNG, no external
//! crates.

mod common;

use common::{cases, test_rng};
use jackpine::bench::Stats;
use jackpine::datagen::rng::Rng;
use jackpine::obs::{Counter, Histogram, HistogramSnapshot};
use std::time::Duration;

fn random_samples(rng: &mut Rng, max_len: usize) -> Vec<Duration> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| Duration::from_nanos(rng.gen_range(0..5_000_000_000u64))).collect()
}

#[test]
fn stats_quantiles_are_ordered() {
    let mut rng = test_rng("stats_quantiles_are_ordered");
    for _ in 0..cases(200) {
        let samples = random_samples(&mut rng, 400);
        let s = Stats::from_durations(&samples);
        assert_eq!(s.n, samples.len());
        assert!(s.min_ms <= s.p50_ms, "min {} > p50 {}", s.min_ms, s.p50_ms);
        assert!(s.p50_ms <= s.p95_ms, "p50 {} > p95 {}", s.p50_ms, s.p95_ms);
        assert!(s.p95_ms <= s.max_ms, "p95 {} > max {}", s.p95_ms, s.max_ms);
        // The mean lies within [min, max], and std is finite and
        // non-negative.
        assert!(s.min_ms <= s.mean_ms + 1e-12 && s.mean_ms <= s.max_ms + 1e-12);
        assert!(s.std_ms >= 0.0 && s.std_ms.is_finite());
    }
}

#[test]
fn stats_are_permutation_invariant() {
    let mut rng = test_rng("stats_are_permutation_invariant");
    for _ in 0..cases(100) {
        let mut samples = random_samples(&mut rng, 100);
        let a = Stats::from_durations(&samples);
        // Fisher–Yates shuffle with the same PRNG.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..(i + 1));
            samples.swap(i, j);
        }
        let b = Stats::from_durations(&samples);
        assert_eq!(a, b, "statistics depend on sample order");
    }
}

#[test]
fn histogram_quantiles_are_ordered_and_bounding() {
    let mut rng = test_rng("histogram_quantiles_are_ordered_and_bounding");
    for _ in 0..cases(100) {
        let h = Histogram::new();
        let n = rng.gen_range(1..500usize);
        let mut max = 0u64;
        let mut sum = 0u64;
        for _ in 0..n {
            // Mix tiny and huge magnitudes to cross many buckets.
            let shift = rng.gen_range(0..60u64);
            let v = rng.gen_range(0..u64::MAX >> shift);
            h.record(v);
            max = max.max(v);
            sum = sum.wrapping_add(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, n as u64);
        assert_eq!(s.sum, sum);
        assert_eq!(s.max, max);
        let (p50, p95, p100) = (s.quantile(0.5), s.quantile(0.95), s.quantile(1.0));
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!(p95 <= p100, "p95 {p95} > p100 {p100}");
        // Bucket upper bounds over-report by at most 2x (and never
        // under-report the true max). The saturating top bucket reports
        // u64::MAX for anything at or above 2^62, so the 2x bound only
        // applies below it.
        assert!(p100 >= max);
        if max > 0 && max < 1 << 62 {
            assert!(p100 <= max.saturating_mul(2), "p100 {p100} > 2*max {max}");
        }
    }
}

#[test]
fn histogram_merge_is_monotone_and_commutative() {
    let mut rng = test_rng("histogram_merge_is_monotone_and_commutative");
    for _ in 0..cases(100) {
        let (a, b) = (Histogram::new(), Histogram::new());
        for _ in 0..rng.gen_range(0..200usize) {
            a.record(rng.gen_range(0..1_000_000u64));
        }
        for _ in 0..rng.gen_range(0..200usize) {
            b.record(rng.gen_range(0..1_000_000u64));
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let merged = sa.merge(&sb);
        assert_eq!(merged, sb.merge(&sa), "merge must be commutative");
        assert_eq!(merged.count, sa.count + sb.count);
        assert_eq!(merged.sum, sa.sum + sb.sum);
        assert_eq!(merged.max, sa.max.max(sb.max));
        // Quantiles are monotone under merge with a larger-valued side:
        // merging can only move any quantile between the two inputs'.
        for q in [0.5, 0.9, 0.99, 1.0] {
            let (qa, qb, qm) = (sa.quantile(q), sb.quantile(q), merged.quantile(q));
            if sa.count > 0 && sb.count > 0 {
                assert!(
                    qm >= qa.min(qb) && qm <= qa.max(qb),
                    "q{q}: merged {qm} outside [{}, {}]",
                    qa.min(qb),
                    qa.max(qb)
                );
            }
        }
        // Identity: merging with an empty histogram changes nothing.
        assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa);
    }
}

#[test]
fn histogram_delta_inverts_merge() {
    let mut rng = test_rng("histogram_delta_inverts_merge");
    for _ in 0..cases(100) {
        let h = Histogram::new();
        for _ in 0..rng.gen_range(0..100usize) {
            h.record(rng.gen_range(0..1_000u64));
        }
        let before = h.snapshot();
        for _ in 0..rng.gen_range(0..100usize) {
            h.record(rng.gen_range(0..1_000u64));
        }
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        let rebuilt = before.merge(&delta);
        assert_eq!(rebuilt.buckets, after.buckets);
        assert_eq!(rebuilt.count, after.count);
        assert_eq!(rebuilt.sum, after.sum);
    }
}

#[test]
fn counter_sums_concurrent_increments() {
    let mut rng = test_rng("counter_sums_concurrent_increments");
    for _ in 0..cases(8) {
        let c = Counter::new();
        let threads = rng.gen_range(1..9usize);
        let per_thread = rng.gen_range(1..2_000u64);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads as u64 * per_thread);
    }
}
