//! Randomized tests: SQL execution must agree with direct computation
//! over the same data, for both scalar filters and spatial predicates
//! (deterministic seeded PRNG).

mod common;

use common::{cases, test_rng};
use jackpine::engine::{EngineProfile, SpatialConnector, SpatialDb};
use jackpine::geom::{Coord, Envelope};
use jackpine::storage::Value;
use std::sync::Arc;

#[test]
fn scalar_filters_match_manual_evaluation() {
    let mut rng = test_rng("scalar_filters_match_manual_evaluation");
    for _ in 0..cases(24) {
        let n = rng.gen_range(0..60usize);
        let rows: Vec<(i64, i64)> =
            (0..n).map(|_| (rng.gen_range(-50..50i64), rng.gen_range(-50..50i64))).collect();
        let threshold = rng.gen_range(-50..50i64);
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").expect("ddl");
        for (a, b) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({a}, {b})")).expect("insert");
        }
        let r = db
            .execute(&format!("SELECT COUNT(*) FROM t WHERE a < b AND a >= {threshold}"))
            .expect("query");
        let want = rows.iter().filter(|(a, b)| a < b && *a >= threshold).count() as i64;
        assert_eq!(r.scalar().and_then(Value::as_i64), Some(want));

        // Aggregates over the same predicate.
        let r = db
            .execute(&format!("SELECT SUM(a), MIN(b), MAX(b) FROM t WHERE a >= {threshold}"))
            .expect("aggregate");
        let selected: Vec<&(i64, i64)> = rows.iter().filter(|(a, _)| *a >= threshold).collect();
        if selected.is_empty() {
            assert!(r.rows[0][0].is_null());
        } else {
            let sum: i64 = selected.iter().map(|(a, _)| a).sum();
            let min = selected.iter().map(|(_, b)| *b).min().expect("non-empty");
            let max = selected.iter().map(|(_, b)| *b).max().expect("non-empty");
            assert_eq!(r.rows[0][0].as_f64(), Some(sum as f64));
            assert_eq!(r.rows[0][1].as_i64(), Some(min));
            assert_eq!(r.rows[0][2].as_i64(), Some(max));
        }
    }
}

#[test]
fn order_by_and_limit_are_correct() {
    let mut rng = test_rng("order_by_and_limit_are_correct");
    for _ in 0..cases(24) {
        let n = rng.gen_range(1..50usize);
        let mut values: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000i64)).collect();
        let limit = rng.gen_range(1..20usize);
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (v BIGINT)").expect("ddl");
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).expect("insert");
        }
        let r =
            db.execute(&format!("SELECT v FROM t ORDER BY v DESC LIMIT {limit}")).expect("query");
        values.sort_unstable_by(|a, b| b.cmp(a));
        let want: Vec<i64> = values.iter().take(limit).copied().collect();
        let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_i64()).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn spatial_window_counts_match_brute_force() {
    let mut rng = test_rng("spatial_window_counts_match_brute_force");
    for _ in 0..cases(24) {
        let n = rng.gen_range(1..80usize);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(-100.0..100.0f64), rng.gen_range(-100.0..100.0f64)))
            .collect();
        let wx = rng.gen_range(-100.0..100.0f64);
        let wy = rng.gen_range(-100.0..100.0f64);
        let ww = rng.gen_range(1.0..50.0f64);
        let wh = rng.gen_range(1.0..50.0f64);
        let window = Envelope::new(wx, wy, wx + ww, wy + wh);
        for profile in [EngineProfile::ExactRtree, EngineProfile::ExactGrid] {
            let db = Arc::new(SpatialDb::new(profile));
            db.execute("CREATE TABLE p (id BIGINT, geom GEOMETRY)").expect("ddl");
            for (i, (x, y)) in pts.iter().enumerate() {
                db.execute(&format!(
                    "INSERT INTO p VALUES ({i}, ST_GeomFromText('POINT ({x} {y})'))"
                ))
                .expect("insert");
            }
            db.create_spatial_index("p", "geom").expect("index");
            let sql = format!(
                "SELECT COUNT(*) FROM p WHERE ST_Within(geom, \
                 ST_MakeEnvelope({}, {}, {}, {}))",
                window.min_x, window.min_y, window.max_x, window.max_y
            );
            let got = db.execute(&sql).expect("query").scalar().and_then(Value::as_i64);
            // ST_Within on a point: strictly inside the rectangle's
            // interior (boundary points are not within).
            let want = pts
                .iter()
                .filter(|(x, y)| window.contains_coord_strict(Coord::new(*x, *y)))
                .count() as i64;
            assert_eq!(got, Some(want), "profile {profile:?}");
        }
    }
}

#[test]
fn index_plan_equals_sequential_plan() {
    let mut rng = test_rng("index_plan_equals_sequential_plan");
    for _ in 0..cases(24) {
        let n = rng.gen_range(1..60usize);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(-100.0..100.0f64), rng.gen_range(-100.0..100.0f64)))
            .collect();
        let qx = rng.gen_range(-100.0..100.0f64);
        let qy = rng.gen_range(-100.0..100.0f64);
        let r = rng.gen_range(1.0..40.0f64);
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE p (id BIGINT, geom GEOMETRY)").expect("ddl");
        for (i, (x, y)) in pts.iter().enumerate() {
            db.execute(&format!("INSERT INTO p VALUES ({i}, ST_GeomFromText('POINT ({x} {y})'))"))
                .expect("insert");
        }
        db.create_spatial_index("p", "geom").expect("index");
        let sql = format!(
            "SELECT COUNT(*) FROM p WHERE ST_DWithin(geom, \
             ST_GeomFromText('POINT ({qx} {qy})'), {r})"
        );
        let with = db.execute(&sql).expect("indexed");
        db.set_use_spatial_index(false);
        let without = db.execute(&sql).expect("sequential");
        assert_eq!(with, without);
    }
}
