//! Fuzz-style property tests for the SQL front end: the parser must never
//! panic, and well-formed statements must round-trip through execution
//! deterministically.

use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::sql::parser::parse;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable garbage: the parser may reject it, but must
    /// never panic or loop.
    #[test]
    fn parser_never_panics_on_garbage(input in "[ -~]{0,120}") {
        let _ = parse(&input);
    }

    /// Garbage built from SQL-looking fragments (much more likely to get
    /// deep into the grammar than uniform noise).
    #[test]
    fn parser_never_panics_on_sql_shaped_garbage(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("JOIN"),
                Just("ON"), Just("ORDER"), Just("BY"), Just("GROUP"),
                Just("LIMIT"), Just("AND"), Just("OR"), Just("NOT"),
                Just("BETWEEN"), Just("IS"), Just("NULL"), Just("*"),
                Just(","), Just("("), Just(")"), Just("="), Just("<"),
                Just(">"), Just("<="), Just("'txt'"), Just("42"), Just("1.5"),
                Just("tbl"), Just("a"), Just("geom"),
                Just("ST_Area"), Just("COUNT"), Just("ST_GeomFromText"),
                Just("INSERT"), Just("INTO"), Just("VALUES"), Just("DELETE"),
                Just("UPDATE"), Just("SET"), Just("EXPLAIN"),
            ],
            0..24,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse(&sql);
    }

    /// The engine surface must be panic-free too: executing arbitrary
    /// SQL-shaped text returns Ok or Err, never aborts.
    #[test]
    fn engine_never_panics_on_sql_shaped_garbage(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("COUNT"), Just("(*)"), Just("FROM"),
                Just("t"), Just("WHERE"), Just("id"), Just("="), Just("1"),
                Just("ST_Within"), Just("(geom,"), Just("geom)"),
                Just("ORDER BY"), Just("LIMIT 5"), Just("GROUP BY"),
            ],
            0..16,
        )
    ) {
        let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
        db.execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").expect("ddl");
        db.execute("INSERT INTO t VALUES (1, ST_GeomFromText('POINT (0 0)'))").expect("dml");
        let sql = parts.join(" ");
        let _ = db.execute(&sql);
    }

    /// Statements the generator KNOWS are valid must parse.
    #[test]
    fn generated_valid_selects_parse(
        cols in proptest::collection::vec(prop_oneof![Just("id"), Just("name")], 1..3),
        limit in proptest::option::of(1..100usize),
        desc in any::<bool>(),
    ) {
        let mut sql = format!("SELECT {} FROM t WHERE id > 0", cols.join(", "));
        sql.push_str(&format!(" ORDER BY id {}", if desc { "DESC" } else { "ASC" }));
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        prop_assert!(parse(&sql).is_ok(), "failed to parse {sql}");
    }
}
