//! Fuzz-style randomized tests for the SQL front end: the parser must
//! never panic, and well-formed statements must round-trip through
//! execution deterministically (deterministic seeded PRNG).

mod common;

use common::{cases, test_rng};
use jackpine::datagen::rng::Rng;
use jackpine::engine::{EngineProfile, SpatialDb};
use jackpine::sql::parser::parse;
use std::sync::Arc;

fn join_fragments(rng: &mut Rng, vocab: &[&str], max: usize) -> String {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| vocab[rng.gen_range(0..vocab.len())]).collect::<Vec<_>>().join(" ")
}

/// Arbitrary printable garbage: the parser may reject it, but must
/// never panic or loop.
#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = test_rng("parser_never_panics_on_garbage");
    for _ in 0..cases(256) {
        let len = rng.gen_range(0..121usize);
        let input: String =
            (0..len).map(|_| char::from(rng.gen_range(0x20..0x7fi64) as u8)).collect();
        let _ = parse(&input);
    }
}

/// Garbage built from SQL-looking fragments (much more likely to get
/// deep into the grammar than uniform noise).
#[test]
fn parser_never_panics_on_sql_shaped_garbage() {
    const VOCAB: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "JOIN",
        "ON",
        "ORDER",
        "BY",
        "GROUP",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "BETWEEN",
        "IS",
        "NULL",
        "*",
        ",",
        "(",
        ")",
        "=",
        "<",
        ">",
        "<=",
        "'txt'",
        "42",
        "1.5",
        "tbl",
        "a",
        "geom",
        "ST_Area",
        "COUNT",
        "ST_GeomFromText",
        "INSERT",
        "INTO",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "EXPLAIN",
    ];
    let mut rng = test_rng("parser_never_panics_on_sql_shaped_garbage");
    for _ in 0..cases(256) {
        let sql = join_fragments(&mut rng, VOCAB, 24);
        let _ = parse(&sql);
    }
}

/// The engine surface must be panic-free too: executing arbitrary
/// SQL-shaped text returns Ok or Err, never aborts.
#[test]
fn engine_never_panics_on_sql_shaped_garbage() {
    const VOCAB: &[&str] = &[
        "SELECT",
        "COUNT",
        "(*)",
        "FROM",
        "t",
        "WHERE",
        "id",
        "=",
        "1",
        "ST_Within",
        "(geom,",
        "geom)",
        "ORDER BY",
        "LIMIT 5",
        "GROUP BY",
    ];
    let mut rng = test_rng("engine_never_panics_on_sql_shaped_garbage");
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").expect("ddl");
    db.execute("INSERT INTO t VALUES (1, ST_GeomFromText('POINT (0 0)'))").expect("dml");
    for _ in 0..cases(256) {
        let sql = join_fragments(&mut rng, VOCAB, 16);
        let _ = db.execute(&sql);
    }
}

/// Statements the generator KNOWS are valid must parse.
#[test]
fn generated_valid_selects_parse() {
    let mut rng = test_rng("generated_valid_selects_parse");
    for _ in 0..cases(256) {
        let ncols = rng.gen_range(1..3usize);
        let cols: Vec<&str> =
            (0..ncols).map(|_| if rng.gen_bool(0.5) { "id" } else { "name" }).collect();
        let desc = rng.gen_bool(0.5);
        let mut sql = format!("SELECT {} FROM t WHERE id > 0", cols.join(", "));
        sql.push_str(&format!(" ORDER BY id {}", if desc { "DESC" } else { "ASC" }));
        if rng.gen_bool(0.5) {
            sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..100usize)));
        }
        assert!(parse(&sql).is_ok(), "failed to parse {sql}");
    }
}
