//! Randomized tests pinning the DE-9IM engine's invariants
//! (deterministic seeded PRNG; more iterations under `slow-tests`).

mod common;

use common::{cases, geometry, star_polygon, test_rng};
use jackpine::geom::Geometry;
use jackpine::topo::{
    contains, covered_by, covers, disjoint, equals, intersects, relate, touches, within,
};

#[test]
fn relate_transpose_symmetry() {
    let mut rng = test_rng("relate_transpose_symmetry");
    for _ in 0..cases(48) {
        let a = geometry(&mut rng);
        let b = geometry(&mut rng);
        let ab = relate(&a, &b).expect("relate computes");
        let ba = relate(&b, &a).expect("relate computes");
        assert_eq!(ab.transposed(), ba, "transpose symmetry: {} vs {}", ab, ba);
    }
}

#[test]
fn disjoint_is_not_intersects() {
    let mut rng = test_rng("disjoint_is_not_intersects");
    for _ in 0..cases(48) {
        let a = geometry(&mut rng);
        let b = geometry(&mut rng);
        assert_ne!(
            disjoint(&a, &b).expect("disjoint computes"),
            intersects(&a, &b).expect("intersects computes")
        );
    }
}

#[test]
fn every_geometry_equals_and_intersects_itself() {
    let mut rng = test_rng("every_geometry_equals_itself");
    for _ in 0..cases(48) {
        let g = geometry(&mut rng);
        assert!(equals(&g, &g).expect("equals computes"));
        assert!(intersects(&g, &g).expect("intersects computes"));
        assert!(covers(&g, &g).expect("covers computes"));
        assert!(covered_by(&g, &g).expect("coveredBy computes"));
        assert!(!touches(&g, &g).expect("touches computes"));
    }
}

#[test]
fn within_contains_duality() {
    let mut rng = test_rng("within_contains_duality");
    for _ in 0..cases(48) {
        let a = geometry(&mut rng);
        let b = geometry(&mut rng);
        assert_eq!(
            within(&a, &b).expect("within computes"),
            contains(&b, &a).expect("contains computes")
        );
        // within implies coveredBy and intersects.
        if within(&a, &b).expect("within computes") {
            assert!(covered_by(&a, &b).expect("coveredBy computes"));
            assert!(intersects(&a, &b).expect("intersects computes"));
        }
    }
}

#[test]
fn touching_geometries_intersect_but_interiors_do_not() {
    let mut rng = test_rng("touching_geometries_intersect");
    for _ in 0..cases(48) {
        let a = geometry(&mut rng);
        let b = geometry(&mut rng);
        if touches(&a, &b).expect("touches computes") {
            assert!(intersects(&a, &b).expect("intersects computes"));
            let m = relate(&a, &b).expect("relate computes");
            assert!(
                m.matches("F********").expect("pattern valid"),
                "touching pair has nonempty interior intersection: {}",
                m
            );
        }
    }
}

#[test]
fn predicate_agrees_with_matrix_pattern() {
    let mut rng = test_rng("predicate_agrees_with_matrix_pattern");
    for _ in 0..cases(48) {
        let ga = Geometry::Polygon(star_polygon(&mut rng));
        let gb = Geometry::Polygon(star_polygon(&mut rng));
        let m = relate(&ga, &gb).expect("relate computes");
        assert_eq!(
            within(&ga, &gb).expect("within computes"),
            m.matches("T*F**F***").expect("pattern valid")
        );
        assert_eq!(
            disjoint(&ga, &gb).expect("disjoint computes"),
            m.matches("FF*FF****").expect("pattern valid")
        );
    }
}

#[test]
fn scaled_up_convex_polygon_contains_original() {
    use jackpine::geom::algorithms::convex_hull;
    use jackpine::geom::{Coord, Polygon, Ring};
    let mut rng = test_rng("scaled_up_convex_polygon");
    for _ in 0..cases(48) {
        let p = star_polygon(&mut rng);
        // Convexify first: dilating a CONVEX polygon by 2x about any
        // interior point contains the original (not true for concave
        // shapes about an arbitrary centre).
        let Geometry::Polygon(hull) = convex_hull(&Geometry::Polygon(p)).expect("hull computes")
        else {
            continue; // degenerate (collinear) input: nothing to test
        };
        // The vertex centroid of a convex polygon is strictly interior.
        let vs = hull.exterior().coords();
        let mut c = Coord::new(0.0, 0.0);
        for v in &vs[..vs.len() - 1] {
            c = c + *v;
        }
        let c = c * (1.0 / (vs.len() - 1) as f64);
        let pts: Vec<Coord> = hull
            .exterior()
            .coords()
            .iter()
            .map(|v| Coord::new(c.x + (v.x - c.x) * 2.0, c.y + (v.y - c.y) * 2.0))
            .collect();
        let big =
            Geometry::Polygon(Polygon::new(Ring::new(pts).expect("scaled ring valid"), Vec::new()));
        let small = Geometry::Polygon(hull);
        assert!(within(&small, &big).expect("within computes"));
        assert!(contains(&big, &small).expect("contains computes"));
        assert!(!disjoint(&small, &big).expect("disjoint computes"));
    }
}
