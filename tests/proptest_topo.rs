//! Property tests pinning the DE-9IM engine's invariants.

mod common;

use common::{geometry, star_polygon};
use jackpine::geom::Geometry;
use jackpine::topo::{
    contains, covered_by, covers, disjoint, equals, intersects, relate, touches, within,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relate_transpose_symmetry(a in geometry(), b in geometry()) {
        let ab = relate(&a, &b).expect("relate computes");
        let ba = relate(&b, &a).expect("relate computes");
        prop_assert_eq!(ab.transposed(), ba, "transpose symmetry: {} vs {}", ab, ba);
    }

    #[test]
    fn disjoint_is_not_intersects(a in geometry(), b in geometry()) {
        prop_assert_ne!(
            disjoint(&a, &b).expect("disjoint computes"),
            intersects(&a, &b).expect("intersects computes")
        );
    }

    #[test]
    fn every_geometry_equals_and_intersects_itself(g in geometry()) {
        prop_assert!(equals(&g, &g).expect("equals computes"));
        prop_assert!(intersects(&g, &g).expect("intersects computes"));
        prop_assert!(covers(&g, &g).expect("covers computes"));
        prop_assert!(covered_by(&g, &g).expect("coveredBy computes"));
        prop_assert!(!touches(&g, &g).expect("touches computes"));
    }

    #[test]
    fn within_contains_duality(a in geometry(), b in geometry()) {
        prop_assert_eq!(
            within(&a, &b).expect("within computes"),
            contains(&b, &a).expect("contains computes")
        );
        // within implies coveredBy and intersects.
        if within(&a, &b).expect("within computes") {
            prop_assert!(covered_by(&a, &b).expect("coveredBy computes"));
            prop_assert!(intersects(&a, &b).expect("intersects computes"));
        }
    }

    #[test]
    fn touching_geometries_intersect_but_interiors_do_not(a in geometry(), b in geometry()) {
        if touches(&a, &b).expect("touches computes") {
            prop_assert!(intersects(&a, &b).expect("intersects computes"));
            let m = relate(&a, &b).expect("relate computes");
            prop_assert!(m.matches("F********").expect("pattern valid"),
                "touching pair has nonempty interior intersection: {}", m);
        }
    }

    #[test]
    fn predicate_agrees_with_matrix_pattern(a in star_polygon(), b in star_polygon()) {
        let (ga, gb) = (Geometry::Polygon(a), Geometry::Polygon(b));
        let m = relate(&ga, &gb).expect("relate computes");
        prop_assert_eq!(
            within(&ga, &gb).expect("within computes"),
            m.matches("T*F**F***").expect("pattern valid")
        );
        prop_assert_eq!(
            disjoint(&ga, &gb).expect("disjoint computes"),
            m.matches("FF*FF****").expect("pattern valid")
        );
    }

    #[test]
    fn scaled_up_convex_polygon_contains_original(p in star_polygon()) {
        use jackpine::geom::algorithms::convex_hull;
        use jackpine::geom::{Coord, Polygon, Ring};
        // Convexify first: dilating a CONVEX polygon by 2x about any
        // interior point contains the original (not true for concave
        // shapes about an arbitrary centre).
        let Geometry::Polygon(hull) = convex_hull(&Geometry::Polygon(p)).expect("hull computes")
        else {
            return Ok(()); // degenerate (collinear) input: nothing to test
        };
        // The vertex centroid of a convex polygon is strictly interior.
        let vs = hull.exterior().coords();
        let mut c = Coord::new(0.0, 0.0);
        for v in &vs[..vs.len() - 1] {
            c = c + *v;
        }
        let c = c * (1.0 / (vs.len() - 1) as f64);
        let pts: Vec<Coord> = hull
            .exterior()
            .coords()
            .iter()
            .map(|v| Coord::new(c.x + (v.x - c.x) * 2.0, c.y + (v.y - c.y) * 2.0))
            .collect();
        let big = Geometry::Polygon(Polygon::new(
            Ring::new(pts).expect("scaled ring valid"),
            Vec::new(),
        ));
        let small = Geometry::Polygon(hull);
        prop_assert!(within(&small, &big).expect("within computes"));
        prop_assert!(contains(&big, &small).expect("contains computes"));
        prop_assert!(!disjoint(&small, &big).expect("disjoint computes"));
    }
}
