//! Flight-recorder integration tests: concurrency safety of the trace
//! ring (writers racing a draining reader), capacity/eviction-order
//! guarantees, slow-query-log thresholding through the engine, and the
//! fingerprint stats API. Assertions are about structure and counts,
//! never about timings.

use jackpine::engine::{EngineProfile, SpatialDb, FLIGHT_RECORDER_CAPACITY};
use jackpine::obs::{EngineMetrics, FlightRecorder, QueryTrace, SlowQueryLog};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn trace(sql: &str) -> Arc<QueryTrace> {
    let m = EngineMetrics::new();
    Arc::new(QueryTrace::new(
        sql,
        Duration::from_micros(1),
        3,
        m.snapshot().delta_since(&m.snapshot()),
    ))
}

/// A small table-backed engine for the engine-level tests.
fn tiny_db() -> Arc<SpatialDb> {
    let db = Arc::new(SpatialDb::new(EngineProfile::ExactRtree));
    db.execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO pts VALUES ({i}, ST_GeomFromText('POINT ({i} {i})'))"))
            .unwrap();
    }
    db
}

/// N writer threads race a reader that alternates `recent` and `drain`.
/// Every observed trace must be whole (its SQL and row count are the
/// pair the writer created together), the ring must never exceed its
/// capacity, and the recorded/evicted/drained accounting must balance.
#[test]
fn concurrent_writers_with_draining_reader() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 500;
    const CAPACITY: usize = 32;

    let ring = Arc::new(FlightRecorder::new(CAPACITY));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(Ordering::Relaxed) {
                assert!(ring.len() <= CAPACITY, "capacity bound violated");
                for t in ring.drain() {
                    // Torn-trace check: the writer stored `w<i>:<j>` as
                    // SQL and j as the row count, atomically together.
                    let j: usize =
                        t.sql.split(':').nth(1).expect("well-formed sql").parse().unwrap();
                    assert_eq!(t.rows, j, "trace torn: sql {} vs rows {}", t.sql, t.rows);
                    seen += 1;
                }
                for t in ring.recent() {
                    assert!(t.sql.starts_with('w'), "foreign trace in ring: {}", t.sql);
                }
                std::thread::yield_now();
            }
            seen + ring.drain().len()
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let m = EngineMetrics::new();
                for j in 0..PER_WRITER {
                    let t = QueryTrace::new(
                        &format!("w{w}:{j}"),
                        Duration::from_micros(1),
                        j,
                        m.snapshot().delta_since(&m.snapshot()),
                    );
                    ring.push(Arc::new(t));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let drained = reader.join().unwrap();

    let pushed = (WRITERS * PER_WRITER) as u64;
    assert_eq!(ring.recorded(), pushed);
    // Every pushed trace was either drained by the reader or evicted to
    // make room; nothing is lost or double-counted.
    assert_eq!(drained as u64 + ring.evicted(), pushed);
}

/// Eviction order is pinned: pushing k > capacity traces retains exactly
/// the last `capacity`, oldest first.
#[test]
fn eviction_order_is_oldest_first() {
    let ring = FlightRecorder::new(8);
    for i in 0..30 {
        ring.push(trace(&format!("q{i}")));
    }
    let sqls: Vec<String> = ring.recent().iter().map(|t| t.sql.clone()).collect();
    let expect: Vec<String> = (22..30).map(|i| format!("q{i}")).collect();
    assert_eq!(sqls, expect);
    assert_eq!(ring.evicted(), 22);
    assert_eq!(ring.recorded(), 30);
}

/// The slow log is a filter over the same stream: offers below the
/// threshold vanish, at-or-above are retained, and the threshold can be
/// retuned live.
#[test]
fn slow_log_respects_threshold_under_concurrency() {
    let log = Arc::new(SlowQueryLog::new(1024, Duration::from_micros(500)));
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let m = EngineMetrics::new();
                let mut admitted = 0u64;
                for j in 0..200 {
                    let micros = if (w + j) % 2 == 0 { 1 } else { 1000 };
                    let t = Arc::new(QueryTrace::new(
                        &format!("w{w}:{j}"),
                        Duration::from_micros(micros),
                        0,
                        m.snapshot().delta_since(&m.snapshot()),
                    ));
                    if log.offer(&t) {
                        admitted += 1;
                    }
                }
                admitted
            })
        })
        .collect();
    let admitted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(admitted, 400, "exactly the slow half is admitted");
    assert_eq!(log.len(), 400);
    assert!(log.recent().iter().all(|t| t.total >= Duration::from_micros(500)));
}

/// The engine records every executed statement into its flight recorder
/// by default, bounded by the recorder capacity, oldest evicted first.
#[test]
fn engine_records_statements_and_bounds_capacity() {
    let db = tiny_db();
    assert!(db.flight_recorder_enabled(), "recorder must be on by default");
    // CREATE + 20 INSERTs already recorded; run SELECTs past capacity.
    let already = db.flight_recorder().recorded();
    let extra = FLIGHT_RECORDER_CAPACITY as u64 + 10 - already;
    for i in 0..extra {
        db.execute(&format!("SELECT COUNT(*) FROM pts WHERE id >= {i}")).unwrap();
    }
    assert_eq!(db.flight_recorder().recorded(), already + extra);
    assert_eq!(db.recent_traces().len(), FLIGHT_RECORDER_CAPACITY);
    assert!(db.flight_recorder().evicted() > 0);
    // The newest trace is the last statement executed.
    let last = db.recent_traces().last().cloned().unwrap();
    assert_eq!(last.sql, format!("SELECT COUNT(*) FROM pts WHERE id >= {}", extra - 1));
    assert_eq!(last.rows, 1);
    assert_eq!(last.counter("queries"), 1);

    // Draining empties the ring; subsequent statements refill it.
    assert_eq!(db.drain_traces().len(), FLIGHT_RECORDER_CAPACITY);
    assert!(db.recent_traces().is_empty());
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(db.recent_traces().len(), 1);
}

/// Concurrency at the engine level: sessions executing on a shared
/// instance while a reader drains. Traces are never torn and the ring
/// stays within capacity.
#[test]
fn engine_concurrent_execution_with_reader() {
    let db = tiny_db();
    db.drain_traces();
    // `recorded`/`evicted` are lifetime counters; measure from here.
    let recorded_base = db.flight_recorder().recorded();
    let evicted_base = db.flight_recorder().evicted();
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drained = 0usize;
            while !stop.load(Ordering::Relaxed) {
                assert!(db.recent_traces().len() <= FLIGHT_RECORDER_CAPACITY);
                for t in db.drain_traces() {
                    assert!(t.sql.starts_with("SELECT COUNT(*) FROM pts"), "torn sql: {}", t.sql);
                    assert_eq!(t.rows, 1, "COUNT(*) returns one row");
                    drained += 1;
                }
                std::thread::yield_now();
            }
            drained + db.drain_traces().len()
        })
    };

    const SESSIONS: usize = 4;
    const PER_SESSION: usize = 100;
    let workers: Vec<_> = (0..SESSIONS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for j in 0..PER_SESSION {
                    db.execute(&format!("SELECT COUNT(*) FROM pts WHERE id >= {}", (w + j) % 20))
                        .unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let drained = reader.join().unwrap();
    let r = db.flight_recorder();
    assert_eq!(r.recorded() - recorded_base, (SESSIONS * PER_SESSION) as u64);
    assert_eq!(drained as u64 + (r.evicted() - evicted_base), r.recorded() - recorded_base);
}

/// Slow-query log through the engine surface: at threshold zero every
/// statement is slow; at an unreachable threshold none are.
#[test]
fn engine_slow_query_log_thresholds() {
    let db = tiny_db();
    assert!(db.slow_queries().is_empty(), "µs-scale statements are not slow by default");

    db.set_slow_query_threshold(Duration::ZERO);
    assert_eq!(db.slow_query_threshold(), Duration::ZERO);
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(db.slow_queries().len(), 1);
    assert_eq!(db.slow_queries()[0].sql, "SELECT COUNT(*) FROM pts");

    db.set_slow_query_threshold(Duration::from_secs(3600));
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(db.slow_queries().len(), 1, "fast statement must not be admitted");
}

/// Fingerprint stats through the engine: same-shape statements with
/// different literals share one fingerprint; errors are counted on the
/// shape; top-k ranks by executions.
#[test]
fn engine_query_stats_aggregate_by_shape() {
    let db = tiny_db();
    for i in 0..7 {
        db.execute(&format!("SELECT COUNT(*) FROM pts WHERE id = {i}")).unwrap();
    }
    db.execute("SELECT id FROM pts WHERE id < 3").unwrap();
    // Same shape as the COUNT query, but against a missing table: the
    // error lands on a *different* shape (table name differs).
    assert!(db.execute("SELECT COUNT(*) FROM missing WHERE id = 9").is_err());

    let stats = db.query_stats(50);
    let count_shape = stats
        .iter()
        .find(|s| s.normalized == "select count ( * ) from pts where id = ?")
        .expect("COUNT shape tracked");
    assert_eq!(count_shape.count, 7, "seven literals, one fingerprint");
    assert_eq!(count_shape.errors, 0);
    assert_eq!(count_shape.rows, 7, "one aggregate row per execution");

    let err_shape = stats
        .iter()
        .find(|s| s.normalized == "select count ( * ) from missing where id = ?")
        .expect("failed shape tracked");
    assert_eq!(err_shape.errors, 1);
    assert_eq!(err_shape.count, 0);

    // Ranking: the COUNT shape has the most executions of any SELECT.
    assert!(stats.iter().position(|s| s.normalized == count_shape.normalized).unwrap() <= 1);
    // top-k truncates.
    assert_eq!(db.query_stats(2).len(), 2);
}

/// The off switch: no recording into ring, slow log, or stats while
/// disabled; re-enabling resumes. Existing traces are preserved.
#[test]
fn recorder_off_switch_stops_recording() {
    let db = tiny_db();
    db.set_slow_query_threshold(Duration::ZERO);
    db.execute("SELECT COUNT(*) FROM pts").unwrap();
    let ring_before = db.flight_recorder().recorded();
    let slow_before = db.slow_queries().len();
    let shapes_before = db.query_stats(1000).len();

    db.set_flight_recorder(false);
    assert!(!db.flight_recorder_enabled());
    db.execute("SELECT id FROM pts WHERE id = 1").unwrap();
    assert_eq!(db.flight_recorder().recorded(), ring_before);
    assert_eq!(db.slow_queries().len(), slow_before);
    assert_eq!(db.query_stats(1000).len(), shapes_before);

    db.set_flight_recorder(true);
    db.execute("SELECT id FROM pts WHERE id = 2").unwrap();
    assert_eq!(db.flight_recorder().recorded(), ring_before + 1);
}
